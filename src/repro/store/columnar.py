"""Columnar shredding of canonical data: the physical layout layer.

Logically every datum is an object tree (⊥, or-values, partial sets —
the paper's full algebra). Physically, most rows in a large store are
flat tuples of scalar attributes, and residual-heavy queries that walk
each tree row by row leave an order of magnitude on the table. This
module decouples the two: a :class:`ColumnStore` *shreds* a snapshot's
data into per-attribute columns — flat Python lists of primitives plus
bitset sidecars — and the column-at-a-time evaluator
(:func:`repro.query.compile.compile_columnar`) answers conditions with
big-int bitset algebra instead of per-row tree walks.

Shredding is per *field*, with a row-level fallback:

* an attribute bound to a plain :class:`~repro.core.objects.Atom`
  becomes a **scalar** entry: its primitive value lands in the column's
  flat array and the ``present`` bit is set;
* an attribute bound to a marker, an or-value or a (partial/complete)
  set whose flattened members are all leaves becomes an **irregular**
  entry: the ``present`` bit records whether the path reaches at least
  one value, the ``irregular`` bit marks the row for per-row evaluation
  wherever a value predicate needs more than existence (the "maybe"
  sidecar — columns carry tri-state answers, they never pretend partial
  data is complete);
* a row with a nested tuple anywhere below a top-level attribute (or a
  non-standard object subclass) is left whole in the **residue**: the
  row scan remains its evaluator, exactly as before.

Top-level non-tuple objects (atoms, markers, ⊥, sets of leaves) shred
to field-less rows — every column is absent, which is precisely what
every path reaches on them.

The resulting masks make three facts *exact* for shredded rows, and the
evaluator leans on all of them:

1. a single-step path reaches exactly the column's entries;
2. a multi-step path reaches nothing (nested tuples force residue);
3. ``present`` is existence — or-value/⊥ uncertainty only widens the
   ``irregular`` "maybe" set, never the definite sets.

Stores are immutable. :meth:`ColumnStore.patched` produces the next
generation copy-on-write, mirroring ``AttrIndex.patched``: removals
only set tombstone bits (scan results are masked, arrays never shrink
eagerly), additions append, and past a drift threshold the store
rebuilds compactly. Classification is fully iterative and the
entry points are routed through :mod:`repro.core.guard`, so
pathologically deep objects cannot blow the recursion limit — they
simply land in the residue.

:func:`write_column_shard` / :func:`read_column_shard` put the same
layout on the binary-codec wire, so the parallel executor ships column
shards — not object trees — to its workers.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Sequence

from repro.core.data import Data, DataSet
from repro.core.guard import guarded as _guarded
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.core.order import structural_key

__all__ = ["Column", "ColumnStore", "bit_positions",
           "write_column_shard", "read_column_shard"]

#: Set-bit offsets within one byte value, for fast bitset iteration.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1)
    for value in range(256))

#: Past this many tombstoned positions (and more dead than alive),
#: ``patched`` rebuilds compactly instead of patching.
_REBUILD_DEAD = 64

#: Ordered-comparison scans memoized per column, capped per store.
_SCAN_MEMO_CAP = 128

_ORDERED_OPS = {"lt": operator.lt, "le": operator.le,
                "gt": operator.gt, "ge": operator.ge}


def bit_positions(bits: int) -> list[int]:
    """Ascending positions of the set bits of a non-negative int.

    The workhorse of bitset→row translation: byte-at-a-time through a
    256-entry offset table, so sparse masks cost O(size/8) regardless
    of how few bits are set.
    """
    if bits <= 0:
        return []
    out: list[int] = []
    raw = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
    for index, byte in enumerate(raw):
        if byte:
            base = index << 3
            out.extend(base + bit for bit in _BYTE_BITS[byte])
    return out


class _BitBuilder:
    """Accumulate single bits into an int without quadratic shifting.

    ``bits |= 1 << i`` per row is O(n) per update on big ints; a
    bytearray keeps each update O(1) and converts once at the end.
    """

    __slots__ = ("_buf",)

    def __init__(self, size: int):
        self._buf = bytearray((size + 7) >> 3)

    def set(self, position: int) -> None:
        self._buf[position >> 3] |= 1 << (position & 7)

    def value(self) -> int:
        return int.from_bytes(self._buf, "little")


def _canonical_key(datum: Data) -> tuple:
    return (structural_key(datum.marker), structural_key(datum.object))


#: Field classification results. ``None`` means "this row cannot be
#: shredded" (a nested tuple or unknown container below the field).
_SCALAR = "scalar"
_IRREGULAR = "irregular"


def _classify_value(value: SSObject):
    """Classify one attribute value; iterative, never recursive.

    Returns ``(_SCALAR, primitive)``, ``(_IRREGULAR, reaches_any)`` or
    ``None`` (force the whole row into the residue).
    """
    if type(value) is Atom:
        return (_SCALAR, value.value)
    if isinstance(value, Tuple):
        return None
    if isinstance(value, (OrValue, PartialSet, CompleteSet)):
        present = False
        stack = list(value.disjuncts if isinstance(value, OrValue)
                     else value.elements)
        while stack:
            node = stack.pop()
            if isinstance(node, Tuple):
                return None
            if isinstance(node, (PartialSet, CompleteSet)):
                stack.extend(node.elements)
            elif isinstance(node, OrValue):
                stack.extend(node.disjuncts)
            elif node is not BOTTOM:
                present = True
        return (_IRREGULAR, present)
    if value is BOTTOM:
        # Unreachable in canonical tuples (⊥ fields are stripped), but
        # classify it anyway: ⊥ reaches nothing.
        return (_IRREGULAR, False)
    # Markers and leaf-like subclasses: reachable, per-row for values.
    return (_IRREGULAR, True)


def _shreddable_top(obj: SSObject) -> bool:
    """Whether a non-tuple top-level object shreds to a field-less row.

    True exactly when no path can reach a value inside it through a
    tuple — i.e. its flattened members contain no tuples.
    """
    if isinstance(obj, Tuple):
        return False
    if isinstance(obj, (OrValue, PartialSet, CompleteSet)):
        stack = list(obj.disjuncts if isinstance(obj, OrValue)
                     else obj.elements)
        while stack:
            node = stack.pop()
            if isinstance(node, Tuple):
                return False
            if isinstance(node, (PartialSet, CompleteSet)):
                stack.extend(node.elements)
            elif isinstance(node, OrValue):
                stack.extend(node.disjuncts)
        return True
    return True  # atoms, markers, ⊥, leaf-like subclasses


class Column:
    """One attribute path's physical column.

    ``values`` is a flat list indexed by row position: the primitive
    atom value at scalar positions, ``None`` elsewhere (atom values are
    never ``None``, so no sentinel collision). ``present`` and
    ``irregular`` are position bitsets; ``extras`` maps irregular
    positions to the original field object (needed to re-materialize
    rows from the wire). Bits at tombstoned positions are masked by the
    store, never cleared here.
    """

    __slots__ = ("values", "present", "irregular", "extras",
                 "_eq_index", "_scan_memo")

    def __init__(self, values: list, present: int, irregular: int,
                 extras: dict[int, SSObject]):
        self.values = values
        self.present = present
        self.irregular = irregular
        self.extras = extras
        self._eq_index: dict | None = None
        self._scan_memo: dict = {}

    def eq_index(self) -> dict:
        """The lazily built hash index: ``(type, value) -> position
        bitset`` over the column's scalar entries.

        This is the vectorized substrate for value-partitioned work:
        the hash-join build side and the group-by kernel read it
        directly (one bitset per distinct value, no per-row dispatch).
        Returned dict is shared and must not be mutated.
        """
        self.eq_bits(0)  # force the lazy build
        return self._eq_index

    def distinct_count(self) -> int:
        """Distinct scalar values (planner join/group statistics)."""
        return len(self.eq_index())

    def numeric_stats(self, mask: int):
        """``(count, total, min, max)`` over the numeric scalar entries
        at positions in ``mask`` — the one-pass fold behind columnar
        ``sum``/``min``/``max`` (booleans excluded, like the ordered
        comparisons)."""
        values = self.values
        count = 0
        total = 0
        minimum = None
        maximum = None
        for position in bit_positions(mask):
            value = values[position]
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                count += 1
                total += value
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
        return count, total, minimum, maximum

    def eq_bits(self, primitive) -> int:
        """Unmasked positions whose scalar entry type-strictly equals
        ``primitive`` (mirrors ``Atom.__eq__``: ``1``, ``True`` and
        ``1.0`` are three different keys)."""
        index = self._eq_index
        if index is None:
            buckets: dict[tuple, _BitBuilder] = {}
            size = len(self.values)
            for position, value in enumerate(self.values):
                if value is None:
                    continue
                key = (type(value), value)
                builder = buckets.get(key)
                if builder is None:
                    builder = buckets[key] = _BitBuilder(size)
                builder.set(position)
            index = {key: builder.value()
                     for key, builder in buckets.items()}
            self._eq_index = index
        return index.get((type(primitive), primitive), 0)

    def ordered_bits(self, op_name: str, bound) -> int:
        """Unmasked positions whose scalar entry satisfies the ordered
        comparison; type-specialized like the compiled row predicate
        (numbers with numbers, strings with strings, never booleans)."""
        memo_key = ("o", op_name, type(bound), bound)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        op = _ORDERED_OPS[op_name]
        builder = _BitBuilder(len(self.values))
        if isinstance(bound, str):
            for position, value in enumerate(self.values):
                if isinstance(value, str) and op(value, bound):
                    builder.set(position)
        else:
            for position, value in enumerate(self.values):
                if (isinstance(value, (int, float))
                        and not isinstance(value, bool)
                        and op(value, bound)):
                    builder.set(position)
        bits = builder.value()
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits

    def contains_bits(self, needle: str) -> int:
        """Unmasked positions whose scalar string entry contains
        ``needle``."""
        memo_key = ("c", needle)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        builder = _BitBuilder(len(self.values))
        for position, value in enumerate(self.values):
            if isinstance(value, str) and needle in value:
                builder.set(position)
        bits = builder.value()
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits


class _ColumnBuilder:
    __slots__ = ("values", "present", "irregular", "extras")

    def __init__(self, size: int):
        self.values: list = [None] * size
        self.present = _BitBuilder(size)
        self.irregular = _BitBuilder(size)
        self.extras: dict[int, SSObject] = {}

    def finish(self) -> Column:
        return Column(self.values, self.present.value(),
                      self.irregular.value(), self.extras)


class ColumnStore:
    """Shredded columns plus a row-fallback residue for one snapshot.

    Positions are stable row indices into :attr:`rows`; all masks are
    big-int bitsets over positions. Instances are immutable once built
    (column scan memos are the only lazy writes, and they are benign),
    so one store can serve lock-free readers like every other
    per-generation structure in this repo.
    """

    __slots__ = ("_rows", "_positions", "_columns", "_labels",
                 "_shredded", "_dead", "_size", "_ordered",
                 "_universe", "_residue", "_alive_count")

    def __init__(self, rows: list[Data], positions: dict[Data, int],
                 columns: dict[str, Column], shredded: int, dead: int,
                 ordered: bool):
        self._rows = rows
        self._positions = positions
        self._columns = columns
        self._labels = tuple(sorted(columns))
        self._shredded = shredded
        self._dead = dead
        self._size = len(rows)
        self._ordered = ordered
        alive = ((1 << self._size) - 1) & ~dead
        self._universe = shredded & alive
        self._residue = alive & ~shredded
        self._alive_count = alive.bit_count()

    # -- construction ----------------------------------------------------------

    @classmethod
    @_guarded
    def build(cls, data: Iterable[Data], *,
              ordered: bool | None = None) -> "ColumnStore":
        """Shred ``data`` (distinct data) into a fresh store.

        ``ordered`` records whether row positions follow the canonical
        data order; it defaults to ``True`` for a :class:`DataSet`
        (whose iteration is canonical) and ``False`` otherwise. Pass
        ``ordered=True`` for a pre-sorted slice (a parallel shard).
        """
        if ordered is None:
            ordered = isinstance(data, DataSet)
        rows = list(data)
        size = len(rows)
        shredded = _BitBuilder(size)
        builders: dict[str, _ColumnBuilder] = {}
        for position, datum in enumerate(rows):
            obj = datum.object
            if type(obj) is Tuple:
                specs = []
                for label, value in obj.items():
                    spec = _classify_value(value)
                    if spec is None:
                        specs = None
                        break
                    specs.append((label, spec, value))
                if specs is None:
                    continue  # residue row
                shredded.set(position)
                for label, (kind, payload), value in specs:
                    column = builders.get(label)
                    if column is None:
                        column = builders[label] = _ColumnBuilder(size)
                    if kind is _SCALAR:
                        column.values[position] = payload
                        column.present.set(position)
                    elif payload:  # irregular entry reaching >=1 value
                        column.present.set(position)
                        column.irregular.set(position)
                        column.extras[position] = value
                    # irregular reaching nothing: all bits stay clear —
                    # indistinguishable from absent for every path.
            elif _shreddable_top(obj):
                shredded.set(position)  # field-less row
            # else: residue row
        columns = {label: builder.finish()
                   for label, builder in builders.items()}
        positions = {datum: position
                     for position, datum in enumerate(rows)}
        return cls(rows, positions, columns, shredded.value(), 0,
                   ordered)

    @_guarded
    def patched(self, removed: Iterable[Data],
                added: Iterable[Data]) -> "ColumnStore":
        """The next generation's store, copy-on-write.

        Removals tombstone positions (masks carry liveness; arrays are
        shared untouched). Additions append — re-adding a tombstoned
        datum resurrects its position. When tombstones outnumber live
        rows the store rebuilds compactly in canonical order.
        """
        dead = self._dead
        removal_mask = _BitBuilder(self._size)
        for datum in removed:
            position = self._positions.get(datum)
            if position is not None:
                removal_mask.set(position)
        dead |= removal_mask.value()

        appended: list[Data] = []
        resurrect = _BitBuilder(self._size)
        for datum in added:
            position = self._positions.get(datum)
            if position is None:
                appended.append(datum)
            elif dead >> position & 1:
                resurrect.set(position)
        dead &= ~resurrect.value()

        old_size = self._size
        if appended:
            tail = ColumnStore.build(appended, ordered=False)
            rows = self._rows + tail._rows
            positions = dict(self._positions)
            for offset, datum in enumerate(tail._rows):
                positions[datum] = old_size + offset
            pad = [None] * len(appended)
            columns: dict[str, Column] = {}
            for label, column in self._columns.items():
                tail_column = tail._columns.get(label)
                if tail_column is None:
                    columns[label] = Column(
                        column.values + pad, column.present,
                        column.irregular, column.extras)
                else:
                    extras = dict(column.extras)
                    extras.update(
                        (old_size + position, value)
                        for position, value in tail_column.extras.items())
                    columns[label] = Column(
                        column.values + tail_column.values,
                        column.present | tail_column.present << old_size,
                        column.irregular
                        | tail_column.irregular << old_size,
                        extras)
            head_pad = [None] * old_size
            for label, tail_column in tail._columns.items():
                if label in columns:
                    continue
                columns[label] = Column(
                    head_pad + tail_column.values,
                    tail_column.present << old_size,
                    tail_column.irregular << old_size,
                    {old_size + position: value
                     for position, value in tail_column.extras.items()})
            shredded = self._shredded | tail._shredded << old_size
            ordered = False
        else:
            rows = self._rows
            positions = self._positions
            columns = self._columns
            shredded = self._shredded
            ordered = self._ordered

        result = ColumnStore(rows, positions, columns, shredded, dead,
                             ordered)
        dead_count = dead.bit_count()
        if dead_count > _REBUILD_DEAD and 2 * dead_count > result._size:
            alive = [rows[position]
                     for position in bit_positions(
                         ((1 << result._size) - 1) & ~dead)]
            alive.sort(key=_canonical_key)
            return ColumnStore.build(alive, ordered=True)
        return result

    # -- introspection ---------------------------------------------------------

    @property
    def rows(self) -> list[Data]:
        """The position-indexed row list (tombstones included)."""
        return self._rows

    @property
    def size(self) -> int:
        """Total positions, live and tombstoned."""
        return self._size

    @property
    def alive_count(self) -> int:
        """Live rows (shredded plus residue)."""
        return self._alive_count

    @property
    def shredded_count(self) -> int:
        """Live rows answered by the columns."""
        return self._universe.bit_count()

    @property
    def residue_count(self) -> int:
        """Live rows only the row scan can answer."""
        return self._residue.bit_count()

    @property
    def labels(self) -> tuple[str, ...]:
        """Shredded attribute labels, sorted."""
        return self._labels

    @property
    def ordered(self) -> bool:
        """Whether ascending position is canonical data order."""
        return self._ordered

    @property
    def universe_mask(self) -> int:
        """Bitset of live shredded rows — the complement base for
        negation in the tri-state evaluator."""
        return self._universe

    @property
    def residue_mask(self) -> int:
        """Bitset of live residue rows (always per-row evaluated)."""
        return self._residue

    def column(self, label: str) -> "Column | None":
        """The physical column for a top-level attribute, if any row
        shredded it (the aggregate/join kernels' entry point)."""
        return self._columns.get(label)

    def positions_mask(self, positions: Iterable[int]) -> int:
        """Ascending-or-not positions folded into one bitset."""
        builder = _BitBuilder(self._size)
        for position in positions:
            builder.set(position)
        return builder.value()

    # -- leaf evaluation -------------------------------------------------------
    #
    # Every method returns ``(true_bits, maybe_bits)`` — disjoint
    # subsets of ``universe_mask``. Rows in neither set *definitively*
    # fail the leaf. Exactness relies on the shred invariants: nested
    # tuples are residue, so on shredded rows a one-step path reaches
    # exactly the column and a longer path reaches nothing.

    def leaf_eq(self, steps: Sequence[str],
                target: SSObject) -> tuple[int, int]:
        if len(steps) != 1:
            return (0, 0)
        column = self._columns.get(steps[0])
        if column is None:
            return (0, 0)
        maybe = column.irregular & self._universe
        if type(target) is Atom:
            return (column.eq_bits(target.value) & self._universe, maybe)
        # Scalar atoms never equal a non-atom target; irregular rows
        # (marker or mixed leaves) go per-row.
        return (0, maybe)

    def leaf_ne(self, steps: Sequence[str],
                target: SSObject) -> tuple[int, int]:
        if len(steps) != 1:
            return (0, 0)
        column = self._columns.get(steps[0])
        if column is None:
            return (0, 0)
        scalar = (column.present & ~column.irregular) & self._universe
        maybe = column.irregular & self._universe
        if type(target) is Atom:
            return (scalar & ~column.eq_bits(target.value), maybe)
        return (scalar, maybe)  # an atom always differs from a non-atom

    def leaf_ordered(self, steps: Sequence[str], op_name: str,
                     bound) -> tuple[int, int]:
        if len(steps) != 1:
            return (0, 0)
        column = self._columns.get(steps[0])
        if column is None:
            return (0, 0)
        return (column.ordered_bits(op_name, bound) & self._universe,
                column.irregular & self._universe)

    def leaf_contains(self, steps: Sequence[str],
                      needle: str) -> tuple[int, int]:
        if len(steps) != 1:
            return (0, 0)
        column = self._columns.get(steps[0])
        if column is None:
            return (0, 0)
        return (column.contains_bits(needle) & self._universe,
                column.irregular & self._universe)

    def leaf_exists(self, steps: Sequence[str]) -> tuple[int, int]:
        if len(steps) != 1:
            return (0, 0)
        column = self._columns.get(steps[0])
        if column is None:
            return (0, 0)
        # ``present`` is existence even on irregular rows: the bit is
        # set exactly when the path reaches >=1 non-⊥ value.
        return (column.present & self._universe, 0)

    # -- selection -------------------------------------------------------------

    def match_positions(self, program, predicate:
                        Callable[[SSObject], bool]) -> list[int]:
        """Ascending live positions matching a compiled columnar
        ``program``, with ``predicate`` (the compiled row condition)
        deciding maybe-rows and the residue."""
        true_bits, maybe_bits = program(self)
        check = maybe_bits | self._residue
        definite = bit_positions(true_bits)
        if not check:
            return definite
        rows = self._rows
        checked = [position for position in bit_positions(check)
                   if predicate(rows[position].object)]
        if not definite:
            return checked
        if not checked:
            return definite
        import heapq

        return list(heapq.merge(definite, checked))

    def matches(self, program, predicate:
                Callable[[SSObject], bool]) -> list[Data]:
        """Matching rows in canonical data order (the row-scan order)."""
        selected = [self._rows[position]
                    for position in self.match_positions(program,
                                                         predicate)]
        if not self._ordered:
            selected.sort(key=_canonical_key)
        return selected


# -- wire format ---------------------------------------------------------------


def write_column_shard(encoder, store: ColumnStore) -> None:
    """Serialize a freshly built (tombstone-free) store column-wise.

    Layout: row count; the residue and field-less rows as full data
    (position-tagged); the shredded mask; then the tuple rows as one
    marker stream plus per-column tagged entry streams — labels travel
    once per column instead of once per row, and the codec's value
    table still deduplicates repeated values across columns.
    """
    size = store.size
    tuple_positions = []
    object_positions = []
    rows = store.rows
    shredded = store.universe_mask
    for position in range(size):
        if (shredded >> position & 1
                and type(rows[position].object) is Tuple):
            tuple_positions.append(position)
        else:
            object_positions.append(position)
    encoder.write_uvarint(size)
    encoder.write_uvarint(len(object_positions))
    for position in object_positions:
        encoder.write_uvarint(position)
        encoder.write_datum(rows[position])
    mask_raw = shredded.to_bytes((size + 7) >> 3 or 1, "little")
    encoder.write_uvarint(len(mask_raw))
    encoder.write_bytes(mask_raw)
    for position in tuple_positions:
        encoder.write_object(rows[position].marker)
    encoder.write_uvarint(len(store.labels))
    for label in store.labels:
        encoder.write_string(label)
        column = store._columns[label]
        values = column.values
        irregular = column.irregular
        extras = column.extras
        present = column.present
        for position in tuple_positions:
            if irregular >> position & 1:
                encoder.write_uvarint(2)
                encoder.write_object(extras[position])
            elif present >> position & 1:
                encoder.write_uvarint(1)
                encoder.write_object(Atom(values[position]))
            else:
                encoder.write_uvarint(0)


def read_column_shard(decoder) -> ColumnStore:
    """Decode :func:`write_column_shard` output into a live store.

    Tuple rows are re-materialized from the column entries through the
    trusted ``Tuple._from_sorted_fields`` constructor (labels arrive
    strictly sorted, values are never ⊥) — the rebuilt rows are
    predicate-equivalent to the originals, which is all position-based
    query answering needs.
    """
    size = decoder.read_uvarint()
    rows: list[Data | None] = [None] * size
    object_count = decoder.read_uvarint()
    for _ in range(object_count):
        position = decoder.read_uvarint()
        rows[position] = decoder.read_datum()
    mask_len = decoder.read_uvarint()
    shredded = int.from_bytes(decoder.read_bytes(mask_len), "little")
    tuple_positions = [position for position in range(size)
                       if rows[position] is None]
    markers = [decoder.read_object() for _ in tuple_positions]
    column_count = decoder.read_uvarint()
    columns: dict[str, Column] = {}
    fields: dict[int, list] = {position: [] for position in tuple_positions}
    for _ in range(column_count):
        label = decoder.read_string()
        builder = _ColumnBuilder(size)
        for position in tuple_positions:
            tag = decoder.read_uvarint()
            if tag == 0:
                continue
            value = decoder.read_object()
            if tag == 1:
                builder.values[position] = value.value
                builder.present.set(position)
            else:
                builder.present.set(position)
                builder.irregular.set(position)
                builder.extras[position] = value
            fields[position].append((label, value))
        columns[label] = builder.finish()
    for position, marker in zip(tuple_positions, markers):
        obj = Tuple._from_sorted_fields(tuple(fields[position]))
        rows[position] = Data(marker, obj)
    positions = {datum: position
                 for position, datum in enumerate(rows)}
    return ColumnStore(rows, positions, columns, shredded, 0, True)
