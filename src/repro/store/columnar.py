"""Columnar shredding of canonical data: the physical layout layer.

Logically every datum is an object tree (⊥, or-values, partial sets —
the paper's full algebra). Physically, most rows in a large store are
tuples of mostly-scalar attributes, and residual-heavy queries that
walk each tree row by row leave an order of magnitude on the table.
This module decouples the two: a :class:`ColumnStore` *shreds* a
snapshot's data into **path-keyed columns** — flat Python lists of
primitives plus bitset sidecars, one column per full label path
(Dremel-style: the column for ``author.name.last`` is keyed
``("author", "name", "last")``) — and the column-at-a-time evaluator
(:func:`repro.query.compile.compile_columnar`) answers conditions with
big-int bitset algebra instead of per-row tree walks.

Shredding recurses through plain nested tuples, with per-*entry*
fallbacks instead of the old whole-row residue:

* a path bound to a plain :class:`~repro.core.objects.Atom` becomes a
  **scalar** entry: its primitive value lands in the column's flat
  array and the ``present`` bit is set;
* a path bound to a plain nested :class:`~repro.core.objects.Tuple`
  (within the shred-depth cap) becomes a **tuple-interior** entry: the
  ``present`` and ``tuples`` bits are set and the tuple's own fields
  shred into deeper path columns — a missing intermediate, a missing
  leaf and an or-valued intermediate each leave a *different* bit
  pattern, which is what keeps the tri-state algebra exact on nested
  paths;
* a path bound to a marker, an or-value or a (partial/complete) set
  whose flattened members are all leaves becomes an **irregular**
  entry: ``present`` records whether the path reaches at least one
  value, and the entry's *possible* values index from the extras
  sidecar (:meth:`Column.possible_index`). Condition leaves are
  existential over reached values, so eq/ne/ordered/contains answer
  **exactly** on irregular entries whose possible values are all plain
  atoms; only entries with a non-atomic possible value stay in the
  per-row "maybe" set — columns carry tri-state answers, they never
  pretend partial data is complete;
* a path whose value mixes tuples into an or-value or set, carries a
  ``Tuple`` *subclass*, or sits at the shred-depth cap becomes an
  **opaque** entry (``opaque`` ⊆ ``irregular``): the value itself is
  evaluated per-row like any irregular entry, and every *descendant*
  path inherits a "maybe" on that row
  (:meth:`ColumnStore.ancestor_opaque`) because nothing below it was
  shredded;
* only genuinely irregular *rows* remain in the **residue**: top-level
  ``Tuple`` subclasses, and non-tuple tops that hide tuples inside
  sets or or-values. The row scan remains their evaluator.

Top-level non-tuple objects (atoms, markers, ⊥, sets of leaves) shred
to field-less rows — every column is absent, which is precisely what
every path reaches on them.

The resulting masks make three facts *exact* for shredded rows, and
the evaluator leans on all of them:

1. a path reaches exactly its column's entries on every row without an
   opaque ancestor — at any depth;
2. on rows where some proper prefix of the path is opaque, the answer
   is "maybe" and nothing stronger;
3. ``present`` is existence, and an irregular entry's possible values
   are exactly its sidecar's spread members — or-value/⊥ uncertainty
   widens the definite sets only through the existential reading the
   row predicates share, never beyond it.

Stores are immutable. :meth:`ColumnStore.patched` produces the next
generation copy-on-write, mirroring ``AttrIndex.patched``: removals
only set tombstone bits (scan results are masked, arrays never shrink
eagerly), additions append, and past a drift threshold the store
rebuilds compactly. Classification is fully iterative and the
entry points are routed through :mod:`repro.core.guard`, so
pathologically deep objects cannot blow the recursion limit — a tuple
chain deeper than :data:`DEFAULT_SHRED_DEPTH` simply truncates into an
opaque entry at the cap.

:func:`write_column_shard` / :func:`read_column_shard` put the same
layout on the binary-codec wire, so the parallel executor ships column
shards — not object trees — to its workers; nested rows are
re-materialized from their path entries on the receiving side.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Sequence

from repro.core.data import Data, DataSet
from repro.core.guard import guarded as _guarded
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.core.order import structural_key

__all__ = ["Column", "ColumnStore", "bit_positions",
           "write_column_shard", "read_column_shard",
           "DEFAULT_SHRED_DEPTH"]

#: A parsed attribute path — the column key.
Path = tuple[str, ...]

#: Set-bit offsets within one byte value, for fast bitset iteration.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1)
    for value in range(256))

#: Past this many tombstoned positions (and more dead than alive),
#: ``patched`` rebuilds compactly instead of patching.
_REBUILD_DEAD = 64

#: Ordered-comparison scans memoized per column, capped per store.
_SCAN_MEMO_CAP = 128

#: Plain nested tuples shred into path columns down to this depth;
#: deeper tuples become opaque entries at the cap (configurable per
#: store via ``ColumnStore.build(shred_depth=...)``).
DEFAULT_SHRED_DEPTH = 8

def bit_positions(bits: int) -> list[int]:
    """Ascending positions of the set bits of a non-negative int.

    The workhorse of bitset→row translation: byte-at-a-time through a
    256-entry offset table, so sparse masks cost O(size/8) regardless
    of how few bits are set.
    """
    if bits <= 0:
        return []
    out: list[int] = []
    raw = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
    for index, byte in enumerate(raw):
        if byte:
            base = index << 3
            out.extend(base + bit for bit in _BYTE_BITS[byte])
    return out


class _BitBuilder:
    """Accumulate single bits into an int without quadratic shifting.

    ``bits |= 1 << i`` per row is O(n) per update on big ints; a
    bytearray keeps each update O(1) and converts once at the end.
    """

    __slots__ = ("_buf",)

    def __init__(self, size: int):
        self._buf = bytearray((size + 7) >> 3)

    def set(self, position: int) -> None:
        self._buf[position >> 3] |= 1 << (position & 7)

    def value(self) -> int:
        return int.from_bytes(self._buf, "little")


def _canonical_key(datum: Data) -> tuple:
    return (structural_key(datum.marker), structural_key(datum.object))


#: Entry classification results (see the module docs).
_SCALAR = "scalar"
_IRREGULAR = "irregular"
_OPAQUE = "opaque"


def _classify_value(value: SSObject):
    """Classify one non-interior path value; iterative, never recursive.

    Returns ``(_SCALAR, primitive)``, ``(_IRREGULAR, reaches_any)`` or
    ``(_OPAQUE, True)``. Plain tuples within the depth cap never reach
    here — the shredder recurses into them instead; tuples that do
    (subclasses, members of sets/or-values, depth-capped chains) make
    the entry opaque: the value is per-row like any irregular entry,
    and descendants of the path are unknowable from the columns.
    """
    if type(value) is Atom:
        return (_SCALAR, value.value)
    if isinstance(value, Tuple):
        # A Tuple subclass (or a plain tuple past the depth cap): a
        # reachable value whose interior the columns do not cover.
        return (_OPAQUE, True)
    if isinstance(value, (OrValue, PartialSet, CompleteSet)):
        present = False
        stack = list(value.disjuncts if isinstance(value, OrValue)
                     else value.elements)
        while stack:
            node = stack.pop()
            if isinstance(node, Tuple):
                # A tuple hiding inside a set/or-value: reachable (the
                # tuple is a value), interior uncovered.
                return (_OPAQUE, True)
            if isinstance(node, (PartialSet, CompleteSet)):
                stack.extend(node.elements)
            elif isinstance(node, OrValue):
                stack.extend(node.disjuncts)
            elif node is not BOTTOM:
                present = True
        return (_IRREGULAR, present)
    if value is BOTTOM:
        # Unreachable in canonical tuples (⊥ fields are stripped), but
        # classify it anyway: ⊥ reaches nothing.
        return (_IRREGULAR, False)
    # Markers and leaf-like subclasses: reachable, per-row for values.
    return (_IRREGULAR, True)


def _sorted_ranges(index: dict) -> tuple:
    """Sorted ``(values, bitsets)`` parallel lists per comparable class
    — numbers (bool excluded) and strings — from a ``(type, value) ->
    bitset`` index. The substrate of :func:`_range_bits`."""
    numeric: list[tuple] = []
    strings: list[tuple] = []
    for (kind, value), bits in index.items():
        if kind is bool:
            continue
        if kind is int or kind is float:
            numeric.append((value, bits))
        elif kind is str:
            strings.append((value, bits))
    numeric.sort(key=lambda pair: pair[0])
    strings.sort(key=lambda pair: pair[0])
    return (
        [value for value, _ in numeric],
        [bits for _, bits in numeric],
        [value for value, _ in strings],
        [bits for _, bits in strings],
    )


def _range_bits(ranges: tuple, op_name: str, bound) -> int:
    """OR of the distinct-value bitsets satisfying the ordered
    comparison: O(log distinct) bisect plus one OR per matching
    distinct value, independent of row count."""
    num_values, num_bits, str_values, str_bits = ranges
    if isinstance(bound, str):
        sorted_values, sorted_bits = str_values, str_bits
    else:
        sorted_values, sorted_bits = num_values, num_bits
    if op_name == "lt":
        selected = sorted_bits[:bisect_left(sorted_values, bound)]
    elif op_name == "le":
        selected = sorted_bits[:bisect_right(sorted_values, bound)]
    elif op_name == "ge":
        selected = sorted_bits[bisect_left(sorted_values, bound):]
    else:  # "gt"
        selected = sorted_bits[bisect_right(sorted_values, bound):]
    bits = 0
    for chunk in selected:
        bits |= chunk
    return bits


def _shreddable_top(obj: SSObject) -> bool:
    """Whether a non-tuple top-level object shreds to a field-less row.

    True exactly when no path can reach a value inside it through a
    tuple — i.e. its flattened members contain no tuples.
    """
    if isinstance(obj, Tuple):
        return False
    if isinstance(obj, (OrValue, PartialSet, CompleteSet)):
        stack = list(obj.disjuncts if isinstance(obj, OrValue)
                     else obj.elements)
        while stack:
            node = stack.pop()
            if isinstance(node, Tuple):
                return False
            if isinstance(node, (PartialSet, CompleteSet)):
                stack.extend(node.elements)
            elif isinstance(node, OrValue):
                stack.extend(node.disjuncts)
        return True
    return True  # atoms, markers, ⊥, leaf-like subclasses


class Column:
    """One attribute path's physical column.

    ``values`` is a flat list indexed by row position: the primitive
    atom value at scalar positions, ``None`` elsewhere (atom values are
    never ``None``, so no sentinel collision). ``present``,
    ``irregular``, ``tuples`` and ``opaque`` are position bitsets:
    ``tuples`` marks tuple-interior entries (the value at this path is
    a plain nested tuple whose fields live in deeper columns), and
    ``opaque`` ⊆ ``irregular`` marks entries whose *descendants* the
    columns do not cover. ``extras`` maps irregular positions to the
    original field object (needed to re-materialize rows from the
    wire). Bits at tombstoned positions are masked by the store, never
    cleared here.
    """

    __slots__ = ("values", "present", "irregular", "tuples", "opaque",
                 "extras", "_eq_index", "_scan_memo", "_ordered_index",
                 "_irr_index", "_irr_ordered")

    def __init__(self, values: list, present: int, irregular: int,
                 tuples: int, opaque: int, extras: dict[int, SSObject]):
        self.values = values
        self.present = present
        self.irregular = irregular
        self.tuples = tuples
        self.opaque = opaque
        self.extras = extras
        self._eq_index: dict | None = None
        self._scan_memo: dict = {}
        self._ordered_index: tuple | None = None
        self._irr_index: tuple | None = None
        self._irr_ordered: tuple | None = None

    def eq_index(self) -> dict:
        """The lazily built hash index: ``(type, value) -> position
        bitset`` over the column's scalar entries.

        This is the vectorized substrate for value-partitioned work:
        the hash-join build side and the group-by kernel read it
        directly (one bitset per distinct value, no per-row dispatch).
        Returned dict is shared and must not be mutated.
        """
        self.eq_bits(0)  # force the lazy build
        return self._eq_index

    def distinct_count(self) -> int:
        """Distinct scalar values (planner join/group statistics)."""
        return len(self.eq_index())

    def numeric_stats(self, mask: int):
        """``(count, total, min, max)`` over the numeric scalar entries
        at positions in ``mask`` — the one-pass fold behind columnar
        ``sum``/``min``/``max`` (booleans excluded, like the ordered
        comparisons)."""
        values = self.values
        count = 0
        total = 0
        minimum = None
        maximum = None
        for position in bit_positions(mask):
            value = values[position]
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                count += 1
                total += value
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
        return count, total, minimum, maximum

    def eq_bits(self, primitive) -> int:
        """Unmasked positions whose scalar entry type-strictly equals
        ``primitive`` (mirrors ``Atom.__eq__``: ``1``, ``True`` and
        ``1.0`` are three different keys)."""
        index = self._eq_index
        if index is None:
            buckets: dict[tuple, _BitBuilder] = {}
            size = len(self.values)
            for position, value in enumerate(self.values):
                if value is None:
                    continue
                key = (type(value), value)
                builder = buckets.get(key)
                if builder is None:
                    builder = buckets[key] = _BitBuilder(size)
                builder.set(position)
            index = {key: builder.value()
                     for key, builder in buckets.items()}
            self._eq_index = index
        return index.get((type(primitive), primitive), 0)

    def _range_index(self) -> tuple:
        """Sorted ``(values, bitsets)`` pairs per comparable class —
        numbers (bool excluded) and strings — built once from the eq
        index. Range scans become a bisect plus an OR over the matching
        distinct-value bitsets instead of a per-row pass."""
        index = self._ordered_index
        if index is None:
            index = self._ordered_index = _sorted_ranges(self.eq_index())
        return index

    def ordered_bits(self, op_name: str, bound) -> int:
        """Unmasked positions whose scalar entry satisfies the ordered
        comparison; type-specialized like the compiled row predicate
        (numbers with numbers, strings with strings, never booleans).

        Answered from the sorted range index: O(log distinct) bisect
        plus one OR per matching distinct value, independent of row
        count."""
        memo_key = ("o", op_name, type(bound), bound)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        bits = _range_bits(self._range_index(), op_name, bound)
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits

    def possible_index(self) -> tuple[dict, int]:
        """``(buckets, fallback_bits)`` over the irregular entries'
        *possible* values, resolved once from the extras sidecar.

        ``buckets`` maps ``(type, value) -> position bitset`` for every
        plain-atom value an irregular entry can spread to (or-value
        disjuncts, set members — the same reached values the row
        predicates see); ``fallback_bits`` marks positions with at
        least one non-atomic possible value (markers, tuples inside
        opaque entries, leaf-like subclasses), which value predicates
        must still evaluate per-row. Because every condition leaf is
        existential over reached values, the buckets let the leaf
        kernels answer eq/ne/ordered/contains *exactly* on atom-only
        irregular rows instead of demoting them all to maybes."""
        index = self._irr_index
        if index is None:
            size = len(self.values)
            buckets: dict[tuple, _BitBuilder] = {}
            fallback = _BitBuilder(size)
            for position, extra in self.extras.items():
                stack = [extra]
                while stack:
                    value = stack.pop()
                    if type(value) is Atom:
                        key = (type(value.value), value.value)
                        builder = buckets.get(key)
                        if builder is None:
                            builder = buckets[key] = _BitBuilder(size)
                        builder.set(position)
                    elif isinstance(value, (PartialSet, CompleteSet)):
                        stack.extend(value.elements)
                    elif isinstance(value, OrValue):
                        stack.extend(value.disjuncts)
                    elif value is not BOTTOM:
                        fallback.set(position)
            index = self._irr_index = (
                {key: builder.value()
                 for key, builder in buckets.items()},
                fallback.value())
        return index

    def fallback_bits(self) -> int:
        """Irregular positions whose possible values are not all plain
        atoms — the rows value predicates still check per-row."""
        return self.possible_index()[1]

    def possible_eq_bits(self, primitive) -> int:
        """Irregular positions where some possible value type-strictly
        equals ``primitive`` — on those rows ``Eq`` definitely matches
        (the predicate is existential over reached values)."""
        return self.possible_index()[0].get((type(primitive), primitive),
                                            0)

    def possible_differs_bits(self, primitive) -> int:
        """Irregular positions where some possible atom value differs
        from ``primitive`` — the existential reading of ``Ne``."""
        memo_key = ("pd", type(primitive), primitive)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        target = (type(primitive), primitive)
        bits = 0
        for key, chunk in self.possible_index()[0].items():
            if key != target:
                bits |= chunk
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits

    def possible_ordered_bits(self, op_name: str, bound) -> int:
        """Irregular positions where some possible atom value satisfies
        the ordered comparison (same type rules as ``ordered_bits``)."""
        memo_key = ("po", op_name, type(bound), bound)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        index = self._irr_ordered
        if index is None:
            index = self._irr_ordered = _sorted_ranges(
                self.possible_index()[0])
        bits = _range_bits(index, op_name, bound)
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits

    def possible_contains_bits(self, needle: str) -> int:
        """Irregular positions where some possible string value
        contains ``needle``."""
        memo_key = ("pc", needle)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        bits = 0
        for (kind, value), chunk in self.possible_index()[0].items():
            if kind is str and needle in value:
                bits |= chunk
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits

    def contains_bits(self, needle: str) -> int:
        """Unmasked positions whose scalar string entry contains
        ``needle``."""
        memo_key = ("c", needle)
        cached = self._scan_memo.get(memo_key)
        if cached is not None:
            return cached
        builder = _BitBuilder(len(self.values))
        for position, value in enumerate(self.values):
            if isinstance(value, str) and needle in value:
                builder.set(position)
        bits = builder.value()
        if len(self._scan_memo) >= _SCAN_MEMO_CAP:
            self._scan_memo.clear()
        self._scan_memo[memo_key] = bits
        return bits


class _ColumnBuilder:
    __slots__ = ("values", "present", "irregular", "tuples", "opaque",
                 "extras")

    def __init__(self, size: int):
        self.values: list = [None] * size
        self.present = _BitBuilder(size)
        self.irregular = _BitBuilder(size)
        self.tuples = _BitBuilder(size)
        self.opaque = _BitBuilder(size)
        self.extras: dict[int, SSObject] = {}

    def finish(self) -> Column:
        return Column(self.values, self.present.value(),
                      self.irregular.value(), self.tuples.value(),
                      self.opaque.value(), self.extras)


class ColumnStore:
    """Shredded path columns plus a row-fallback residue for one
    snapshot.

    Positions are stable row indices into :attr:`rows`; all masks are
    big-int bitsets over positions. Instances are immutable once built
    (column scan memos and the opaque-ancestor memo are the only lazy
    writes, and they are benign), so one store can serve lock-free
    readers like every other per-generation structure in this repo.
    """

    __slots__ = ("_rows", "_positions", "_columns", "_labels", "_paths",
                 "_shredded", "_dead", "_size", "_ordered",
                 "_universe", "_residue", "_alive_count",
                 "_shred_depth", "_opaque_memo", "_alt_memo")

    def __init__(self, rows: list[Data], positions: dict[Data, int],
                 columns: dict[Path, Column], shredded: int, dead: int,
                 ordered: bool, shred_depth: int = DEFAULT_SHRED_DEPTH):
        self._rows = rows
        self._positions = positions
        self._columns = columns
        self._paths = tuple(sorted(columns))
        self._labels = tuple(".".join(path) for path in self._paths)
        self._shredded = shredded
        self._dead = dead
        self._size = len(rows)
        self._ordered = ordered
        self._shred_depth = shred_depth
        alive = ((1 << self._size) - 1) & ~dead
        self._universe = shredded & alive
        self._residue = alive & ~shredded
        self._alive_count = alive.bit_count()
        self._opaque_memo: dict[Path, int] = {}
        self._alt_memo: dict = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    @_guarded
    def build(cls, data: Iterable[Data], *,
              ordered: bool | None = None,
              shred_depth: int = DEFAULT_SHRED_DEPTH) -> "ColumnStore":
        """Shred ``data`` (distinct data) into a fresh store.

        ``ordered`` records whether row positions follow the canonical
        data order; it defaults to ``True`` for a :class:`DataSet`
        (whose iteration is canonical) and ``False`` otherwise. Pass
        ``ordered=True`` for a pre-sorted slice (a parallel shard).
        ``shred_depth`` caps path recursion: plain tuples at paths of
        that length become opaque entries instead of shredding deeper.
        """
        if ordered is None:
            ordered = isinstance(data, DataSet)
        rows = list(data)
        size = len(rows)
        shredded = _BitBuilder(size)
        builders: dict[Path, _ColumnBuilder] = {}
        stack: list[tuple[Path, Tuple]] = []
        for position, datum in enumerate(rows):
            obj = datum.object
            if type(obj) is Tuple:
                shredded.set(position)
                stack.append(((), obj))
                while stack:
                    prefix, node = stack.pop()
                    for label, value in node.items():
                        path = prefix + (label,)
                        column = builders.get(path)
                        if column is None:
                            column = builders[path] = _ColumnBuilder(size)
                        if (type(value) is Tuple
                                and len(path) < shred_depth):
                            column.present.set(position)
                            column.tuples.set(position)
                            stack.append((path, value))
                            continue
                        kind, payload = _classify_value(value)
                        if kind is _SCALAR:
                            column.values[position] = payload
                            column.present.set(position)
                        elif kind is _OPAQUE:
                            column.present.set(position)
                            column.irregular.set(position)
                            column.opaque.set(position)
                            column.extras[position] = value
                        elif payload:  # irregular entry reaching >=1 value
                            column.present.set(position)
                            column.irregular.set(position)
                            column.extras[position] = value
                        # irregular reaching nothing: all bits stay
                        # clear — indistinguishable from absent for
                        # every path.
            elif _shreddable_top(obj):
                shredded.set(position)  # field-less row
            # else: residue row (Tuple subclass top, tuples hiding in a
            # non-tuple top)
        columns = {path: builder.finish()
                   for path, builder in builders.items()}
        positions = {datum: position
                     for position, datum in enumerate(rows)}
        return cls(rows, positions, columns, shredded.value(), 0,
                   ordered, shred_depth)

    @_guarded
    def patched(self, removed: Iterable[Data],
                added: Iterable[Data]) -> "ColumnStore":
        """The next generation's store, copy-on-write.

        Removals tombstone positions (masks carry liveness; arrays are
        shared untouched). Additions append — re-adding a tombstoned
        datum resurrects its position. When tombstones outnumber live
        rows the store rebuilds compactly in canonical order.
        """
        dead = self._dead
        removal_mask = _BitBuilder(self._size)
        for datum in removed:
            position = self._positions.get(datum)
            if position is not None:
                removal_mask.set(position)
        dead |= removal_mask.value()

        appended: list[Data] = []
        resurrect = _BitBuilder(self._size)
        for datum in added:
            position = self._positions.get(datum)
            if position is None:
                appended.append(datum)
            elif dead >> position & 1:
                resurrect.set(position)
        dead &= ~resurrect.value()

        old_size = self._size
        if appended:
            tail = ColumnStore.build(appended, ordered=False,
                                     shred_depth=self._shred_depth)
            rows = self._rows + tail._rows
            positions = dict(self._positions)
            for offset, datum in enumerate(tail._rows):
                positions[datum] = old_size + offset
            pad = [None] * len(appended)
            columns: dict[Path, Column] = {}
            for path, column in self._columns.items():
                tail_column = tail._columns.get(path)
                if tail_column is None:
                    columns[path] = Column(
                        column.values + pad, column.present,
                        column.irregular, column.tuples, column.opaque,
                        column.extras)
                else:
                    extras = dict(column.extras)
                    extras.update(
                        (old_size + position, value)
                        for position, value in tail_column.extras.items())
                    columns[path] = Column(
                        column.values + tail_column.values,
                        column.present | tail_column.present << old_size,
                        column.irregular
                        | tail_column.irregular << old_size,
                        column.tuples | tail_column.tuples << old_size,
                        column.opaque | tail_column.opaque << old_size,
                        extras)
            head_pad = [None] * old_size
            for path, tail_column in tail._columns.items():
                if path in columns:
                    continue
                columns[path] = Column(
                    head_pad + tail_column.values,
                    tail_column.present << old_size,
                    tail_column.irregular << old_size,
                    tail_column.tuples << old_size,
                    tail_column.opaque << old_size,
                    {old_size + position: value
                     for position, value in tail_column.extras.items()})
            shredded = self._shredded | tail._shredded << old_size
            ordered = False
        else:
            rows = self._rows
            positions = self._positions
            columns = self._columns
            shredded = self._shredded
            ordered = self._ordered

        result = ColumnStore(rows, positions, columns, shredded, dead,
                             ordered, self._shred_depth)
        dead_count = dead.bit_count()
        if dead_count > _REBUILD_DEAD and 2 * dead_count > result._size:
            alive = [rows[position]
                     for position in bit_positions(
                         ((1 << result._size) - 1) & ~dead)]
            alive.sort(key=_canonical_key)
            return ColumnStore.build(alive, ordered=True,
                                     shred_depth=self._shred_depth)
        return result

    # -- introspection ---------------------------------------------------------

    @property
    def rows(self) -> list[Data]:
        """The position-indexed row list (tombstones included)."""
        return self._rows

    @property
    def size(self) -> int:
        """Total positions, live and tombstoned."""
        return self._size

    @property
    def alive_count(self) -> int:
        """Live rows (shredded plus residue)."""
        return self._alive_count

    @property
    def shredded_count(self) -> int:
        """Live rows answered by the columns."""
        return self._universe.bit_count()

    @property
    def residue_count(self) -> int:
        """Live rows only the row scan can answer."""
        return self._residue.bit_count()

    @property
    def labels(self) -> tuple[str, ...]:
        """Shredded paths as dotted strings, sorted."""
        return self._labels

    @property
    def paths(self) -> tuple[Path, ...]:
        """Shredded path keys, sorted."""
        return self._paths

    @property
    def shred_depth(self) -> int:
        """The depth cap plain nested tuples shred down to."""
        return self._shred_depth

    @property
    def ordered(self) -> bool:
        """Whether ascending position is canonical data order."""
        return self._ordered

    @property
    def universe_mask(self) -> int:
        """Bitset of live shredded rows — the complement base for
        negation in the tri-state evaluator."""
        return self._universe

    @property
    def residue_mask(self) -> int:
        """Bitset of live residue rows (always per-row evaluated)."""
        return self._residue

    @property
    def alt_memo(self) -> dict:
        """Per-snapshot memo for the query layer's per-row alternatives
        resolver: ``(position, steps) -> alternatives``. Rows and
        positions are immutable for the store's lifetime, so resolved
        alternatives stay valid across queries — the aggregate kernels
        share this dict instead of re-walking irregular rows on every
        invocation (capped by the caller, benign under races like the
        scan memos)."""
        return self._alt_memo

    def column(self, path) -> "Column | None":
        """The physical column for an attribute path, if any row
        shredded it (the aggregate/join kernels' entry point).

        ``path`` is a step tuple; a plain string is parsed on dots.
        """
        if isinstance(path, str):
            path = tuple(path.split("."))
        else:
            path = tuple(path)
        return self._columns.get(path)

    def ancestor_opaque(self, steps) -> int:
        """Live shredded rows where some *proper prefix* of ``steps``
        is an opaque entry: the columns cannot answer the path there —
        every predicate is "maybe" on those rows. Memoized per path.
        """
        steps = tuple(steps)
        bits = self._opaque_memo.get(steps)
        if bits is None:
            bits = 0
            for depth in range(1, len(steps)):
                column = self._columns.get(steps[:depth])
                if column is not None:
                    bits |= column.opaque
            bits &= self._universe
            self._opaque_memo[steps] = bits
        return bits

    def path_masks(self, steps) -> "tuple[Column | None, int, int]":
        """``(column, scalar_mask, per_row_mask)`` for a path — the
        shared entry point of the join and aggregate kernels.

        ``scalar_mask`` holds the live rows whose value at the path is
        a single scalar readable from ``column.values``;
        ``per_row_mask`` holds the live shredded rows that need the
        per-row resolver (irregular entries, tuple-interior values,
        opaque ancestors). Rows in neither mask definitely reach
        nothing at the path.
        """
        steps = tuple(steps)
        column = self._columns.get(steps)
        ancestors = self.ancestor_opaque(steps)
        if column is None:
            return None, 0, ancestors
        universe = self._universe
        scalar = (column.present & ~column.irregular
                  & ~column.tuples) & universe
        per_row = ((column.irregular | column.tuples)
                   & universe) | ancestors
        return column, scalar, per_row

    def positions_mask(self, positions: Iterable[int]) -> int:
        """Ascending-or-not positions folded into one bitset."""
        builder = _BitBuilder(self._size)
        for position in positions:
            builder.set(position)
        return builder.value()

    # -- leaf evaluation -------------------------------------------------------
    #
    # Every method returns ``(true_bits, maybe_bits)`` — disjoint
    # subsets of ``universe_mask``. Rows in neither set *definitively*
    # fail the leaf. Exactness relies on the shred invariants: on rows
    # without an opaque ancestor a path reaches exactly its column's
    # entries (at any depth), and rows *with* an opaque ancestor carry
    # no entry at the path — they surface only through the
    # ancestor-opaque maybe mask, so the two sets never overlap.
    #
    # Irregular entries are *not* automatic maybes: every condition
    # leaf is existential over the path's reached values, so an
    # or-valued or set-valued entry resolves exactly from the possible
    # values in its extras sidecar (``Column.possible_index``). Only
    # entries with a non-atomic possible value (``fallback_bits``) and
    # opaque-ancestor rows remain per-row.

    def leaf_eq(self, steps: Sequence[str],
                target: SSObject) -> tuple[int, int]:
        steps = tuple(steps)
        column = self._columns.get(steps)
        ancestors = self.ancestor_opaque(steps)
        if column is None:
            return (0, ancestors)
        universe = self._universe
        if type(target) is Atom:
            # A tuple-interior value is a Tuple: never equal to an atom.
            true = (column.eq_bits(target.value)
                    | column.possible_eq_bits(target.value)) & universe
            maybe = ((column.fallback_bits() & universe) | ancestors)
            return (true, maybe & ~true)
        # Scalar atoms never equal a non-atom target; irregular rows
        # (marker or mixed leaves) and tuple-interior values go per-row.
        return (0, ((column.irregular | column.tuples) & universe)
                | ancestors)

    def leaf_ne(self, steps: Sequence[str],
                target: SSObject) -> tuple[int, int]:
        steps = tuple(steps)
        column = self._columns.get(steps)
        ancestors = self.ancestor_opaque(steps)
        if column is None:
            return (0, ancestors)
        universe = self._universe
        scalar = (column.present & ~column.irregular
                  & ~column.tuples) & universe
        if type(target) is Atom:
            # A tuple-interior value always differs from an atom.
            true = ((scalar & ~column.eq_bits(target.value))
                    | (column.tuples & universe)
                    | (column.possible_differs_bits(target.value)
                       & universe))
            maybe = ((column.fallback_bits() & universe) | ancestors)
            return (true, maybe & ~true)
        # An atom always differs from a non-atom; a tuple-interior
        # value might equal a Tuple target — per-row.
        return (scalar, ((column.irregular | column.tuples) & universe)
                | ancestors)

    def leaf_ordered(self, steps: Sequence[str], op_name: str,
                     bound) -> tuple[int, int]:
        steps = tuple(steps)
        column = self._columns.get(steps)
        ancestors = self.ancestor_opaque(steps)
        if column is None:
            return (0, ancestors)
        universe = self._universe
        # Tuple-interior values never satisfy the type-specialized
        # comparison: definite misses, like non-numeric scalars.
        true = (column.ordered_bits(op_name, bound)
                | column.possible_ordered_bits(op_name, bound)) & universe
        maybe = (column.fallback_bits() & universe) | ancestors
        return (true, maybe & ~true)

    def leaf_contains(self, steps: Sequence[str],
                      needle: str) -> tuple[int, int]:
        steps = tuple(steps)
        column = self._columns.get(steps)
        ancestors = self.ancestor_opaque(steps)
        if column is None:
            return (0, ancestors)
        universe = self._universe
        true = (column.contains_bits(needle)
                | column.possible_contains_bits(needle)) & universe
        maybe = (column.fallback_bits() & universe) | ancestors
        return (true, maybe & ~true)

    def leaf_exists(self, steps: Sequence[str]) -> tuple[int, int]:
        steps = tuple(steps)
        column = self._columns.get(steps)
        ancestors = self.ancestor_opaque(steps)
        if column is None:
            return (0, ancestors)
        # ``present`` is existence even on irregular and tuple-interior
        # rows: the bit is set exactly when the path reaches >=1 non-⊥
        # value. Opaque-ancestor rows have no entry here, so the maybe
        # mask stays disjoint by construction.
        return (column.present & self._universe,
                ancestors & ~column.present)

    # -- selection -------------------------------------------------------------

    def match_positions(self, program, predicate:
                        Callable[[SSObject], bool]) -> list[int]:
        """Ascending live positions matching a compiled columnar
        ``program``, with ``predicate`` (the compiled row condition)
        deciding maybe-rows and the residue."""
        true_bits, maybe_bits = program(self)
        check = maybe_bits | self._residue
        definite = bit_positions(true_bits)
        if not check:
            return definite
        rows = self._rows
        checked = [position for position in bit_positions(check)
                   if predicate(rows[position].object)]
        if not definite:
            return checked
        if not checked:
            return definite
        import heapq

        return list(heapq.merge(definite, checked))

    def matches(self, program, predicate:
                Callable[[SSObject], bool]) -> list[Data]:
        """Matching rows in canonical data order (the row-scan order)."""
        selected = [self._rows[position]
                    for position in self.match_positions(program,
                                                         predicate)]
        if not self._ordered:
            selected.sort(key=_canonical_key)
        return selected


# -- wire format ---------------------------------------------------------------


def write_column_shard(encoder, store: ColumnStore) -> None:
    """Serialize a freshly built (tombstone-free) store column-wise.

    Layout: row count; the residue and field-less rows as full data
    (position-tagged); the shredded mask; then the tuple rows as one
    marker stream plus per-column tagged entry streams — path labels
    travel once per column instead of once per row, and the codec's
    value table still deduplicates repeated values across columns.
    Entry tags: 0 absent, 1 scalar, 2 irregular, 3 opaque,
    4 tuple-interior (no payload — the interior's fields are in the
    deeper columns).
    """
    size = store.size
    tuple_positions = []
    object_positions = []
    rows = store.rows
    shredded = store.universe_mask
    for position in range(size):
        if (shredded >> position & 1
                and type(rows[position].object) is Tuple):
            tuple_positions.append(position)
        else:
            object_positions.append(position)
    encoder.write_uvarint(size)
    encoder.write_uvarint(len(object_positions))
    for position in object_positions:
        encoder.write_uvarint(position)
        encoder.write_datum(rows[position])
    mask_raw = shredded.to_bytes((size + 7) >> 3 or 1, "little")
    encoder.write_uvarint(len(mask_raw))
    encoder.write_bytes(mask_raw)
    for position in tuple_positions:
        encoder.write_object(rows[position].marker)
    paths = store.paths
    encoder.write_uvarint(len(paths))
    for path in paths:
        encoder.write_uvarint(len(path))
        for label in path:
            encoder.write_string(label)
        column = store._columns[path]
        values = column.values
        irregular = column.irregular
        tuples = column.tuples
        opaque = column.opaque
        extras = column.extras
        present = column.present
        for position in tuple_positions:
            if opaque >> position & 1:
                encoder.write_uvarint(3)
                encoder.write_object(extras[position])
            elif irregular >> position & 1:
                encoder.write_uvarint(2)
                encoder.write_object(extras[position])
            elif tuples >> position & 1:
                encoder.write_uvarint(4)
            elif present >> position & 1:
                encoder.write_uvarint(1)
                encoder.write_object(Atom(values[position]))
            else:
                encoder.write_uvarint(0)


#: Marks a tuple-interior entry in the decoder's per-row entry list.
_INTERIOR = object()


def _assemble_row(items: list) -> Tuple:
    """Rebuild one nested tuple row from its ``(path, value)`` entries.

    ``items`` arrives sorted by path (the column iteration order) with
    every interior tuple explicitly present (tag 4, value
    ``_INTERIOR``) *before* its children — tuple-prefix order
    guarantees both — so a single stack pass reassembles the nesting
    with sorted fields at every level, ready for the trusted
    ``Tuple._from_sorted_fields`` constructor.
    """
    root: list = []
    stack: list[tuple[Path, list]] = [((), root)]
    for path, value in items:
        while len(stack) > 1 and path[:len(stack[-1][0])] != stack[-1][0]:
            prefix, fields = stack.pop()
            stack[-1][1].append(
                (prefix[-1], Tuple._from_sorted_fields(tuple(fields))))
        if value is _INTERIOR:
            stack.append((path, []))
        else:
            stack[-1][1].append((path[-1], value))
    while len(stack) > 1:
        prefix, fields = stack.pop()
        stack[-1][1].append(
            (prefix[-1], Tuple._from_sorted_fields(tuple(fields))))
    return Tuple._from_sorted_fields(tuple(root))


def read_column_shard(decoder) -> ColumnStore:
    """Decode :func:`write_column_shard` output into a live store.

    Tuple rows are re-materialized from the path-column entries through
    the trusted ``Tuple._from_sorted_fields`` constructor (paths arrive
    strictly sorted, values are never ⊥, interiors rebuild bottom-up) —
    the rebuilt rows are predicate-equivalent to the originals, which
    is all position-based query answering needs.
    """
    size = decoder.read_uvarint()
    rows: list[Data | None] = [None] * size
    object_count = decoder.read_uvarint()
    for _ in range(object_count):
        position = decoder.read_uvarint()
        rows[position] = decoder.read_datum()
    mask_len = decoder.read_uvarint()
    shredded = int.from_bytes(decoder.read_bytes(mask_len), "little")
    tuple_positions = [position for position in range(size)
                       if rows[position] is None]
    markers = [decoder.read_object() for _ in tuple_positions]
    column_count = decoder.read_uvarint()
    columns: dict[Path, Column] = {}
    entries: dict[int, list] = {position: []
                                for position in tuple_positions}
    for _ in range(column_count):
        length = decoder.read_uvarint()
        path = tuple(decoder.read_string() for _ in range(length))
        builder = _ColumnBuilder(size)
        for position in tuple_positions:
            tag = decoder.read_uvarint()
            if tag == 0:
                continue
            if tag == 4:
                builder.present.set(position)
                builder.tuples.set(position)
                entries[position].append((path, _INTERIOR))
                continue
            value = decoder.read_object()
            if tag == 1:
                builder.values[position] = value.value
                builder.present.set(position)
            else:
                builder.present.set(position)
                builder.irregular.set(position)
                if tag == 3:
                    builder.opaque.set(position)
                builder.extras[position] = value
            entries[position].append((path, value))
        columns[path] = builder.finish()
    for position, marker in zip(tuple_positions, markers):
        rows[position] = Data(marker, _assemble_row(entries[position]))
    positions = {datum: position
                 for position, datum in enumerate(rows)}
    return ColumnStore(rows, positions, columns, shredded, 0, True)
