"""Blocked, optionally parallel bulk-merge pipeline.

The engine's Definition 12 fold ``((S1 ∪K S2) ∪K S3) ∪K …`` re-pairs the
whole accumulator against every new source. This module restructures the
fold around the key index without changing a single output datum:

**Signature blocking** (:func:`blocked_union`). Every datum of every
source is classified once by :func:`~repro.store.index.signature`. For
indexable data signature equality is *exactly* Definition 6
compatibility (see :mod:`repro.store.index`), and ``O ∪K O' `` of two
block-mates keeps their common key-attribute values (Definition 9 cases
merge equal values to themselves), so each signature block is closed
under the fold and disjoint from every other block. The global k-way
fold therefore factors into independent per-block folds whose
concatenation is structurally identical to the naive pairwise fold —
including the fold *order*, which matters because ``∪K`` is commutative
but not associative. Unindexable data (tuple-valued key attributes) can
only ever pair with each other and fold pairwise in one scan block;
never-matching data (``⊥``/partial set under a key attribute) pass
through untouched.

**Incremental accumulation** (:class:`IncrementalUnion` /
:func:`fold_union`). The alternative shape for ingest-style workloads: a
mutable accumulator whose :class:`~repro.store.index.KeyIndex` is
maintained one datum at a time across the whole fold, so each
``∪K``-step probes a live index instead of rebuilding one. Each step
returns the exact :class:`UnionDiff` (data removed, data added), which
lets a :class:`~repro.store.database.Database` patch its marker and key
indexes instead of rebuilding them.

**Parallel block merging**. Blocks are independent, so
``blocked_union(..., parallel=n)`` shards the multi-source blocks over a
process pool, shipping them through the binary wire format
(:mod:`repro.binary_codec`): one value table per shard payload, so the
shared substructure inside a shard crosses the process boundary once,
and workers decode straight into interned objects instead of parsing
tagged JSON twice. Parallelism is opt-in, deterministic (the result is
a set; block order cannot leak), and falls back to the sequential path
— with a ``RuntimeWarning`` — when the pool or the inter-process codec
is unavailable.
"""

from __future__ import annotations

import io
import warnings
from dataclasses import dataclass
from typing import AbstractSet, Hashable, Iterable, Sequence

from repro.binary_codec import Decoder, Encoder
from repro.core.compatibility import check_key, compatible_data
from repro.core.data import Data, DataSet
from repro.core.errors import CodecError, MergeError
from repro.store.index import NEVER_MATCHES, UNINDEXABLE, KeyIndex, signature
from repro.store.ops import _same_datum

__all__ = ["blocked_union", "fold_union", "IncrementalUnion", "UnionDiff"]

#: A block's per-source contributions, in source order. Sources that
#: contribute nothing to a block are skipped (an empty operand leaves a
#: Definition 12 union step unchanged).
_Slabs = list[list[Data]]


# ---------------------------------------------------------------------------
# Signature partitioning
# ---------------------------------------------------------------------------

def _partition_sources(
        sources: Sequence[DataSet], key: AbstractSet[str],
) -> tuple[dict[Hashable, _Slabs], _Slabs, list[Data]]:
    """Split all sources into signature blocks, the scan block and the
    pass-through list, preserving source order inside each block."""
    blocks: dict[Hashable, _Slabs] = {}
    scan_slabs: _Slabs = []
    never: list[Data] = []
    for source in sources:
        local: dict[Hashable, list[Data]] = {}
        local_scan: list[Data] = []
        for datum in source:
            classified = signature(datum, key)
            if classified == NEVER_MATCHES:
                never.append(datum)
            elif classified == UNINDEXABLE:
                local_scan.append(datum)
            else:
                local.setdefault(classified, []).append(datum)
        for classified, rows in local.items():
            blocks.setdefault(classified, []).append(rows)
        if local_scan:
            scan_slabs.append(local_scan)
    return blocks, scan_slabs, never


# ---------------------------------------------------------------------------
# Per-block folds
# ---------------------------------------------------------------------------

def _fold_block(slabs: _Slabs, key: frozenset[str]) -> list[Data]:
    """Fold one indexable block in source order.

    All cross-pairs inside a block are compatible, so each step is the
    full cross-product of Definition 11 unions; the inter-step ``set``
    reproduces the structural dedup the naive fold gets from building a
    :class:`DataSet` after every step.
    """
    state: Iterable[Data] = slabs[0]
    for rows in slabs[1:]:
        state = {first if _same_datum(first, second)
                 else first.union(second, key)
                 for first in state for second in rows}
    return list(state)


def _fold_scan(slabs: _Slabs, key: frozenset[str]) -> list[Data]:
    """Fold the scan block (tuple-valued key attributes) pairwise.

    Same shape as :func:`~repro.store.ops.indexed_union` per step, minus
    the index: scan data only ever pair with scan data, and their unions
    keep a tuple under the key attribute, so the block stays closed.
    """
    state: Iterable[Data] = slabs[0]
    for rows in slabs[1:]:
        step: list[Data] = []
        matched: set[int] = set()
        for first in state:
            partners = [second for second in rows
                        if compatible_data(first, second, key)]
            if not partners:
                step.append(first)
                continue
            matched.update(map(id, partners))
            step.extend(first if _same_datum(first, second)
                        else first.union(second, key)
                        for second in partners)
        step.extend(second for second in rows if id(second) not in matched)
        state = set(step)
    return list(state)


# ---------------------------------------------------------------------------
# Parallel sharding
# ---------------------------------------------------------------------------

def _shard_blocks(blocks: list[_Slabs], shard_count: int) -> list[list[_Slabs]]:
    """Distribute blocks over shards, largest first, always onto the
    least-loaded shard (cost ≈ rows², the cross-product bound)."""
    shards: list[list[_Slabs]] = [[] for _ in range(shard_count)]
    loads = [0] * shard_count
    costed = sorted(
        ((sum(len(rows) for rows in slabs) ** 2, index)
         for index, slabs in enumerate(blocks)),
        reverse=True)
    for cost, index in costed:
        target = loads.index(min(loads))
        shards[target].append(blocks[index])
        loads[target] += cost
    return [shard for shard in shards if shard]


def _encode_shard(shard: list[_Slabs], key: frozenset[str]) -> bytes:
    """Serialize one shard (key + blocks of slabs) to wire bytes.

    One :class:`~repro.binary_codec.Encoder` per shard means one value
    table: a datum repeated across blocks, or substructure shared by
    hash-consing, crosses the process boundary as a varint ref.
    """
    buffer = io.BytesIO()
    encoder = Encoder(buffer)
    encoder.write_uvarint(len(key))
    for attr in sorted(key):
        encoder.write_string(attr)
    encoder.write_uvarint(len(shard))
    for slabs in shard:
        encoder.write_uvarint(len(slabs))
        for slab in slabs:
            encoder.write_uvarint(len(slab))
            for datum in slab:
                encoder.write_datum(datum)
    encoder.flush()
    return buffer.getvalue()


def _merge_shard(payload: bytes) -> bytes:
    """Process-pool worker: fold every block of one serialized shard.

    Decodes with ``intern=True`` — the worker's fold runs ``∪K`` over
    canonical objects and hits the identity memo fast paths — and
    streams the folded data back as one binary payload.
    """
    decoder = Decoder(io.BytesIO(payload), intern=True)
    key = frozenset(decoder.read_string()
                    for _ in range(decoder.read_uvarint()))
    buffer = io.BytesIO()
    encoder = Encoder(buffer)
    for _ in range(decoder.read_uvarint()):
        slabs = [[decoder.read_datum()
                  for _ in range(decoder.read_uvarint())]
                 for _ in range(decoder.read_uvarint())]
        for datum in _fold_block(slabs, key):
            encoder.write_datum(datum)
    encoder.write_end()
    encoder.flush()
    return buffer.getvalue()


def _fold_blocks_parallel(blocks: list[_Slabs], key: frozenset[str],
                          workers: int) -> list[Data] | None:
    """Fold blocks across a process pool; ``None`` means "fall back to
    the sequential path" (pool unavailable, codec trouble, …).

    Only *infrastructure* failures trigger the fallback — a broken or
    unavailable pool, an OS-level resource error, or codec trouble
    shipping blocks between processes. A genuine bug raised by the fold
    itself propagates to the caller instead of being masked, and every
    fallback emits a :class:`RuntimeWarning` so a permanently broken
    parallel path stays observable.
    """
    try:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        from pickle import PicklingError

        shards = _shard_blocks(blocks, workers)
        payloads = [_encode_shard(shard, key) for shard in shards]
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            results = list(pool.map(_merge_shard, payloads))
        return [datum for result in results
                for datum in Decoder(io.BytesIO(result)).iter_data()]
    except (CodecError, OSError, BrokenExecutor, PicklingError,
            NotImplementedError, ImportError) as error:
        warnings.warn(
            f"parallel block merge unavailable "
            f"({type(error).__name__}: {error}); "
            f"falling back to sequential folding",
            RuntimeWarning, stacklevel=3)
        return None


# ---------------------------------------------------------------------------
# The k-way entry point
# ---------------------------------------------------------------------------

def blocked_union(sources: Iterable[DataSet | Iterable[Data]],
                  key: Iterable[str], *, parallel: int = 0) -> DataSet:
    """K-way ``∪K`` of ``sources`` in order, via signature blocking.

    Structurally identical to the naive left fold
    ``((S1 ∪K S2) ∪K S3) ∪K …`` of :meth:`DataSet.union` — the engine's
    equivalence tests and the pipeline benchmark assert this on every
    run. ``parallel > 0`` folds multi-source blocks on that many worker
    processes (sharded through the binary wire format of
    :mod:`repro.binary_codec`) and falls back to sequential folding —
    emitting a :class:`RuntimeWarning` — when a pool cannot be used.
    """
    checked = check_key(key)
    if parallel < 0:
        raise MergeError(f"parallel must be >= 0, got {parallel}")
    normalized = [source if isinstance(source, DataSet)
                  else DataSet(source) for source in sources]
    if not normalized:
        return DataSet()
    if len(normalized) == 1:
        return normalized[0]
    blocks, scan_slabs, never = _partition_sources(normalized, checked)
    result: list[Data] = []
    multi: list[_Slabs] = []
    for slabs in blocks.values():
        # Single-source blocks have nothing to pair with: pass through.
        if len(slabs) == 1:
            result.extend(slabs[0])
        else:
            multi.append(slabs)
    folded: list[Data] | None = None
    if parallel and multi:
        folded = _fold_blocks_parallel(multi, checked, parallel)
    if folded is None:
        folded = [datum for slabs in multi
                  for datum in _fold_block(slabs, checked)]
    result.extend(folded)
    if scan_slabs:
        result.extend(_fold_scan(scan_slabs, checked))
    result.extend(never)
    return DataSet(result)


# ---------------------------------------------------------------------------
# Incremental accumulation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UnionDiff:
    """Net effect of one ``∪K``-step on an accumulator."""

    removed: tuple[Data, ...]
    added: tuple[Data, ...]

    @property
    def unchanged(self) -> bool:
        return not self.removed and not self.added


def union_diff(current: AbstractSet[Data], index: KeyIndex,
               source: DataSet, key: frozenset[str]) -> UnionDiff:
    """Diff form of ``current ∪K source`` probed through ``index``.

    ``index`` must index exactly ``current``. Matched accumulator data
    are replaced by their Definition 11 unions; unmatched source data
    join. The diff is *net*: a datum produced by the step that already
    sits in ``current`` is neither removed nor added.
    """
    to_remove: set[Data] = set()
    to_add: set[Data] = set()
    for datum in source:
        partners = [candidate for candidate in index.candidates(datum)
                    if compatible_data(datum, candidate, key)]
        if not partners:
            to_add.add(datum)
            continue
        for partner in partners:
            to_remove.add(partner)
            to_add.add(partner if _same_datum(partner, datum)
                       else partner.union(datum, key))
    return UnionDiff(
        removed=tuple(datum for datum in to_remove if datum not in to_add),
        added=tuple(datum for datum in to_add if datum not in current),
    )


class IncrementalUnion:
    """A mutable ``∪K`` accumulator with a continuously maintained index.

    Where :func:`blocked_union` restructures a whole k-way fold,
    this class serves ingest loops: the accumulator's
    :class:`~repro.store.index.KeyIndex` is built once and patched per
    step, so folding n sources probes live indexes instead of rebuilding
    one per step. Results are identical to the naive fold.
    """

    def __init__(self, initial: Iterable[Data] = (),
                 key: Iterable[str] = ()):
        self._key = check_key(key)
        self._data: set[Data] = set(initial)
        self._index = KeyIndex(self._data, self._key)

    @property
    def key(self) -> frozenset[str]:
        return self._key

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, datum: object) -> bool:
        return datum in self._data

    def result(self) -> DataSet:
        """The accumulated ``∪K`` fold so far."""
        return DataSet(self._data)

    def union_step(self, source: DataSet | Iterable[Data]) -> UnionDiff:
        """Fold one more source in; returns the applied net diff."""
        if not isinstance(source, DataSet):
            source = DataSet(source)
        diff = union_diff(self._data, self._index, source, self._key)
        for datum in diff.removed:
            self._data.discard(datum)
            self._index.remove(datum)
        for datum in diff.added:
            self._data.add(datum)
            self._index.add(datum)
        return diff


def fold_union(sources: Iterable[DataSet | Iterable[Data]],
               key: Iterable[str]) -> DataSet:
    """Left fold of ``∪K`` over ``sources`` via :class:`IncrementalUnion`."""
    iterator = iter(sources)
    try:
        first = next(iterator)
    except StopIteration:
        return DataSet()
    accumulator = IncrementalUnion(
        first if isinstance(first, DataSet) else DataSet(first), key)
    for source in iterator:
        accumulator.union_step(source)
    return accumulator.result()
