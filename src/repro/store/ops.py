"""Index-accelerated Definition 12 operations.

Drop-in replacements for :meth:`DataSet.union` / ``intersection`` /
``difference`` that build a :class:`~repro.store.index.KeyIndex` over the
second operand and probe it instead of scanning all pairs. Results are
**identical** to the naive operations (the S5 ablation benchmark asserts
this on every run); only the pairing step changes from O(n·m) to
O(n + m) for indexable data.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.compatibility import check_key, compatible_data
from repro.core.data import Data, DataSet
from repro.core.intern import equal as _equal
from repro.store.index import KeyIndex

__all__ = ["indexed_union", "indexed_intersection", "indexed_difference"]


def _compatible_partners(datum: Data, index: KeyIndex) -> list[Data]:
    return [candidate for candidate in index.candidates(datum)
            if compatible_data(datum, candidate, index.key)]


def _same_datum(first: Data, second: Data) -> bool:
    """Equality with the interned fast path (identity / both-canonical)."""
    if first is second:
        return True
    return (_equal(first.marker, second.marker)
            and _equal(first.object, second.object))


def indexed_union(first: DataSet, second: DataSet,
                  key: Iterable[str]) -> DataSet:
    """``S1 ∪K S2`` via a key index on ``S2`` (same result as
    :meth:`DataSet.union`)."""
    checked = check_key(key)
    index = KeyIndex(second, checked)
    result: list[Data] = []
    # Matched S2 data are tracked by instance identity: the index holds
    # the very instances ``second`` yields (a DataSet is a frozenset, so
    # each structural value has exactly one instance), which makes the
    # id() probe equivalent to structural membership without re-hashing
    # large Data values on every pass.
    matched_second: set[int] = set()
    for datum in first:
        partners = _compatible_partners(datum, index)
        if not partners:
            result.append(datum)
            continue
        matched_second.update(map(id, partners))
        # d ∪K d = d (Definition 11 merges identical marker and object
        # parts to themselves), so identical partners skip the merge.
        result.extend(datum if _same_datum(datum, partner)
                      else datum.union(partner, checked)
                      for partner in partners)
    # Compatibility is symmetric, so the data of S2 with no partner are
    # exactly those never collected above.
    result.extend(datum for datum in second
                  if id(datum) not in matched_second)
    return DataSet(result)


def indexed_intersection(first: DataSet, second: DataSet,
                         key: Iterable[str]) -> DataSet:
    """``S1 ∩K S2`` via a key index on ``S2``."""
    checked = check_key(key)
    index = KeyIndex(second, checked)
    result: list[Data] = []
    for datum in first:
        # d ∩K d = d, so identical partners skip the merge (the analogous
        # shortcut is NOT taken for difference, where d −K d ≠ d).
        result.extend(datum if _same_datum(datum, partner)
                      else datum.intersection(partner, checked)
                      for partner in _compatible_partners(datum, index))
    return DataSet(result)


def indexed_difference(first: DataSet, second: DataSet,
                       key: Iterable[str]) -> DataSet:
    """``S1 −K S2`` via a key index on ``S2``."""
    checked = check_key(key)
    index = KeyIndex(second, checked)
    result: list[Data] = []
    for datum in first:
        partners = _compatible_partners(datum, index)
        if not partners:
            result.append(datum)
        else:
            result.extend(datum.difference(partner, checked)
                          for partner in partners)
    return DataSet(result)
