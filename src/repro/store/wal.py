"""Write-ahead log: incremental durability for :class:`Database`.

Full-snapshot persistence (``Database.save``) makes every commit after
the last save volatile; this module closes that gap. Every committed
write batch — the net ``(removed, added)`` diff the single batch
``_apply`` path already computes, plus its generation number — is
appended to an on-disk log *before* the new MVCC state is published,
so a crash at any instant loses at most the one commit whose frame
never reached the disk. Reopening replays log-on-top-of-snapshot and
lands on exactly the last durably committed generation: the paper's
partial-information values (⊥, or-values, partial sets) ride through
unchanged because frames carry full :class:`~repro.core.data.Data`
values in the :mod:`repro.binary_codec` wire format.

On-disk layout (all integers are LEB128 varints)::

    wal     := header frame*
    header  := magic "RPWL", varint version, varint base-generation,
               varint flags, crc32(header bytes) LE32
    frame   := varint len(payload), payload, crc32(payload) LE32
    payload := binary-codec stream (no stream header):
               varint generation,
               varint n-removed, n-removed datum records,
               varint n-added,   n-added   datum records

``base-generation`` is the generation of the snapshot the log applies
on top of; frame generations are the contiguous run ``base+1, base+2,
…``. Each frame is a self-contained codec stream (its own value
table), so one torn frame can never corrupt its neighbours.

**Recovery is never fatal.** :func:`scan_wal` accepts arbitrary bytes
and returns the longest intact frame prefix: it stops at the first
frame whose length field is malformed, whose CRC-32 does not match,
whose payload does not decode, or whose generation breaks the
contiguous run (a duplicated or replayed frame ends the valid prefix
exactly like a torn one). A corrupt header yields an empty prefix —
recovery then falls back to the snapshot alone. Opening a
:class:`WriteAheadLog` for writing truncates the invalid tail so the
next append extends a fully valid log.

**Group commit.** Concurrent committers do not each pay an fsync:
:class:`GroupCommitter` implements the classic leader/follower
protocol. Every writer registers its pre-encoded frame (in generation
order, under the owning store's writer lock) and then blocks on the
commit barrier; the first one in elects itself *leader*, drains the
whole queue, writes every queued frame with **one** ``write`` and
**one** ``fsync`` (:meth:`WriteAheadLog.append_batch`), publishes the
batch through the ``on_durable`` callback, and only then releases the
followers. An optional bounded ``commit_interval`` makes the leader
linger before draining, coalescing even writers that would not
otherwise overlap. The fsync-before-publish invariant holds per
batch: no follower returns — and no reader can pin a batched
generation — before the batch's single fsync has retired.

**Crash-point instrumentation.** The commit and compaction paths call
:func:`_maybe_crash` at named points (``pre-append``, ``mid-append``,
``batch-mid-write``, ``pre-fsync``, ``post-fsync``,
``compact-pre-snapshot-swap``, ``compact-pre-wal-swap``). When the
``REPRO_WAL_CRASH`` environment variable names a point (optionally
``point:N`` for the N-th hit), the process SIGKILLs itself there — no
cleanup handlers, no flushes — so the crash-simulation harness
(``tests/harness/crashsim.py``) can exercise every ordering window of
the commit protocol with a real process death. ``mid-append``
additionally writes only half the batch first, simulating a torn
write; ``batch-mid-write`` arms only for multi-frame batches and
kills the leader after the batch's first frame is fully written, so
recovery must land on a committed prefix *inside* the batch.
"""

from __future__ import annotations

import io
import os
import signal
import tempfile
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.binary_codec import Decoder, Encoder, pack_uvarint
from repro.core.data import Data
from repro.core.errors import CodecError
from repro.store.fsutil import fsync_directory

__all__ = ["WriteAheadLog", "WalFrame", "WalScan", "scan_wal",
           "wal_path", "encode_frame", "encode_frame_body",
           "frame_from_body", "decode_frame_payload",
           "CommitTicket", "GroupCommitter"]

#: Magic prefix of a write-ahead log file.
WAL_MAGIC = b"RPWL"

#: Log format version; bumped on incompatible changes.
WAL_VERSION = 1

#: Header flag: frames were written from an interning database.
_FLAG_INTERNED = 1

#: Environment variable arming a crash point: ``"point"`` or
#: ``"point:N"`` (SIGKILL on the N-th hit; default the first).
CRASH_ENV = "REPRO_WAL_CRASH"

#: Per-point hit counters for ``point:N`` crash specs.
_crash_hits: dict[str, int] = {}


def _crash_armed(point: str) -> bool:
    """Whether this hit of ``point`` is the one the environment arms."""
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return False
    name, _, nth = spec.partition(":")
    if name != point:
        return False
    hits = _crash_hits.get(point, 0) + 1
    _crash_hits[point] = hits
    return hits == (int(nth) if nth else 1)


def _kill_self() -> None:
    """Die instantly — no atexit, no buffers, no finally blocks."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(137)  # non-POSIX fallback; still skips cleanup


def _maybe_crash(point: str) -> None:
    if _crash_armed(point):
        _kill_self()


def wal_path(snapshot_path: str | Path) -> Path:
    """The log path paired with a snapshot path (``<snapshot>.wal``)."""
    return Path(str(snapshot_path) + ".wal")


class WalFrame:
    """One committed write batch: generation plus its net diff."""

    __slots__ = ("generation", "removed", "added")

    def __init__(self, generation: int, removed: tuple[Data, ...],
                 added: tuple[Data, ...]):
        self.generation = generation
        self.removed = removed
        self.added = added

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WalFrame(generation={self.generation}, "
                f"-{len(self.removed)}/+{len(self.added)})")


class WalScan:
    """The result of :func:`scan_wal`: the longest intact prefix.

    ``valid_length`` is the byte offset at which validity ends —
    everything past it is a torn or corrupt tail (or, for an invalid
    header, the whole file). ``offsets[i]`` is the byte offset at which
    ``frames[i]`` starts, so callers can map byte positions to frames.
    """

    __slots__ = ("exists", "header_valid", "base_generation", "interned",
                 "frames", "offsets", "valid_length", "file_size")

    def __init__(self, *, exists: bool, header_valid: bool,
                 base_generation: int | None, interned: bool,
                 frames: list[WalFrame], offsets: list[int],
                 valid_length: int, file_size: int):
        self.exists = exists
        self.header_valid = header_valid
        self.base_generation = base_generation
        self.interned = interned
        self.frames = frames
        self.offsets = offsets
        self.valid_length = valid_length
        self.file_size = file_size

    @property
    def last_generation(self) -> int:
        """The generation recovery lands on (base if no frames)."""
        if self.frames:
            return self.frames[-1].generation
        return self.base_generation or 0


def _uvarint_at(blob: bytes, pos: int) -> tuple[int, int] | None:
    """Decode a varint at ``pos``; ``None`` when malformed/truncated."""
    value = 0
    shift = 0
    size = len(blob)
    while pos < size:
        byte = blob[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            return None
    return None


def encode_frame_body(removed: Sequence[Data],
                      added: Sequence[Data]) -> bytes:
    """Serialize a commit's diff — everything but the generation.

    The body is the expensive part of a frame (one codec ``write_datum``
    per datum); the generation varint that precedes it in the payload
    is independent of the codec's value table, so a writer can encode
    its body *before* it knows which generation the commit will land
    on — i.e. outside the store's writer lock — and stamp the
    generation on later with :func:`frame_from_body`.
    """
    buffer = io.BytesIO()
    encoder = Encoder(buffer, header=False)
    encoder.write_uvarint(len(removed))
    for datum in removed:
        encoder.write_datum(datum)
    encoder.write_uvarint(len(added))
    for datum in added:
        encoder.write_datum(datum)
    encoder.flush()
    return buffer.getvalue()


def frame_from_body(generation: int, body: bytes) -> bytes:
    """Stamp a generation onto a pre-encoded body: the complete
    length-prefixed, CRC-checked frame ready for the log."""
    payload = pack_uvarint(generation) + body
    return (pack_uvarint(len(payload)) + payload
            + zlib.crc32(payload).to_bytes(4, "little"))


def encode_frame(generation: int, removed: Sequence[Data],
                 added: Sequence[Data]) -> bytes:
    """Serialize one commit as a length-prefixed, CRC-checked frame."""
    return frame_from_body(generation, encode_frame_body(removed, added))


def decode_frame_payload(payload: bytes, *, intern: bool) -> WalFrame:
    """Parse one frame payload; raises :class:`CodecError` on damage."""
    decoder = Decoder(io.BytesIO(payload), header=False, intern=intern)
    generation = decoder.read_uvarint()
    removed = tuple(decoder.read_datum()
                    for _ in range(decoder.read_uvarint()))
    added = tuple(decoder.read_datum()
                  for _ in range(decoder.read_uvarint()))
    return WalFrame(generation, removed, added)


def _header_bytes(base_generation: int, interned: bool) -> bytes:
    body = (WAL_MAGIC + pack_uvarint(WAL_VERSION)
            + pack_uvarint(base_generation)
            + pack_uvarint(_FLAG_INTERNED if interned else 0))
    return body + zlib.crc32(body).to_bytes(4, "little")


def _parse_header(blob: bytes) -> tuple[int, bool, int] | None:
    """``(base_generation, interned, end_offset)``; ``None`` if bad."""
    if blob[:len(WAL_MAGIC)] != WAL_MAGIC:
        return None
    at = _uvarint_at(blob, len(WAL_MAGIC))
    if at is None or at[0] != WAL_VERSION:
        return None
    at = _uvarint_at(blob, at[1])
    if at is None:
        return None
    base, pos = at
    at = _uvarint_at(blob, pos)
    if at is None:
        return None
    flags, pos = at
    if pos + 4 > len(blob):
        return None
    if zlib.crc32(blob[:pos]) != int.from_bytes(blob[pos:pos + 4],
                                                "little"):
        return None
    return base, bool(flags & _FLAG_INTERNED), pos + 4


def scan_wal(path: str | Path, *, intern: bool = False) -> WalScan:
    """Read a log, returning its longest intact frame prefix.

    Never raises on damaged content: any malformed length, CRC
    mismatch, undecodable payload or non-contiguous generation ends the
    valid prefix at the previous frame boundary. A missing file or a
    corrupt header yields an empty prefix (``header_valid`` tells the
    two apart from a merely frameless log).
    """
    try:
        blob = Path(path).read_bytes()
    except OSError:
        return WalScan(exists=False, header_valid=False,
                       base_generation=None, interned=intern,
                       frames=[], offsets=[], valid_length=0,
                       file_size=0)
    parsed = _parse_header(blob)
    if parsed is None:
        return WalScan(exists=True, header_valid=False,
                       base_generation=None, interned=intern,
                       frames=[], offsets=[], valid_length=0,
                       file_size=len(blob))
    base, interned_flag, pos = parsed
    frames: list[WalFrame] = []
    offsets: list[int] = []
    valid_length = pos
    expected = base + 1
    size = len(blob)
    while pos < size:
        start = pos
        at = _uvarint_at(blob, pos)
        if at is None:
            break
        length, pos = at
        end = pos + length
        if end + 4 > size:
            break
        payload = blob[pos:end]
        if zlib.crc32(payload) != int.from_bytes(blob[end:end + 4],
                                                 "little"):
            break
        try:
            frame = decode_frame_payload(payload, intern=intern)
        except CodecError:
            break
        if frame.generation != expected:
            # A duplicated, replayed or reordered frame: the log's
            # contiguous-generation invariant is broken, so the valid
            # prefix ends here exactly as it would at a torn write.
            break
        frames.append(frame)
        offsets.append(start)
        expected += 1
        pos = end + 4
        valid_length = pos
    return WalScan(exists=True, header_valid=True, base_generation=base,
                   interned=interned_flag, frames=frames,
                   offsets=offsets, valid_length=valid_length,
                   file_size=len(blob))


class WriteAheadLog:
    """An append-only commit log paired with one snapshot file.

    Opening repairs the log in place: a torn or corrupt tail found by
    :func:`scan_wal` is truncated away, and a missing or header-corrupt
    file is recreated fresh at ``base_generation``. Appends are
    serialized by the owning :class:`~repro.store.database.Database`
    (its writer lock, or a :class:`GroupCommitter` leader); each
    append is flushed and fsynced before it returns, so a frame that
    was appended is a frame recovery will see.

    **Durability contract of ``fsync=False``.** Every append still
    ``flush()``-es each frame's bytes into the operating system's page
    cache before returning — only the ``fsync`` syscall is skipped. A
    frame that was appended therefore survives *process death* (crash,
    SIGKILL, uncaught exception): the kernel owns the bytes and will
    write them back regardless of what the process does next. What it
    does **not** survive is the machine dying — power loss, kernel
    panic — before the kernel's own writeback runs. Use it when the
    failure domain you care about is the process, not the host.
    """

    def __init__(self, path: str | Path, *, base_generation: int = 0,
                 interned: bool = True, fsync: bool = True,
                 scan: WalScan | None = None):
        self._path = Path(path)
        self._fsync = fsync
        self._handle = None
        #: Frames appended / fsync batches retired since opening: the
        #: observable record of how much coalescing group commit won
        #: (``frames_appended / sync_batches`` is the mean batch size).
        self.frames_appended = 0
        self.sync_batches = 0
        if scan is None:
            scan = scan_wal(self._path, intern=interned)
        if scan.exists and scan.header_valid:
            self.interned = scan.interned
            self.base_generation = scan.base_generation or 0
            self.last_generation = scan.last_generation
            if scan.valid_length < scan.file_size:
                # Torn/corrupt tail: truncate so appends extend a
                # fully valid log instead of burying frames behind
                # garbage the scanner would stop at.
                with open(self._path, "r+b") as repair:
                    repair.truncate(scan.valid_length)
                    repair.flush()
                    os.fsync(repair.fileno())
            self.size = scan.valid_length
            self._handle = open(self._path, "ab")
        else:
            self.interned = interned
            self._create(base_generation)

    def _create(self, base_generation: int) -> None:
        """(Re)write an empty log durably: header only."""
        header = _header_bytes(base_generation, self.interned)
        temp = self._write_temp(header)
        os.replace(temp, self._path)
        fsync_directory(self._path.parent)
        self.base_generation = base_generation
        self.last_generation = base_generation
        self.size = len(header)
        if self._handle is not None:
            self._handle.close()
        self._handle = open(self._path, "ab")

    def _write_temp(self, content: bytes) -> str:
        """Write ``content`` to an fsynced temp file in the log's
        directory; returns its name (caller replaces or unlinks)."""
        descriptor, temp_name = tempfile.mkstemp(
            dir=self._path.parent, prefix=self._path.name, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(content)
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        return temp_name

    @property
    def path(self) -> Path:
        return self._path

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append(self, generation: int, removed: Iterable[Data],
               added: Iterable[Data]) -> None:
        """Durably log one commit; must precede the MVCC publish.

        The frame is written, flushed and fsynced before this returns:
        once a reader can observe the new generation, its frame is on
        disk. On any write/fsync failure the partial frame is truncated
        away again, so a failed append never leaves bytes a later
        append would bury mid-log. (``fsync=False`` skips only the
        fsync — the flush still happens, see the class docs.)
        """
        self.append_batch([(generation,
                            encode_frame(generation, tuple(removed),
                                         tuple(added)))])

    def append_batch(self,
                     frames: Sequence[tuple[int, bytes]]) -> None:
        """Durably log a batch of pre-encoded frames: one ``write``,
        one ``flush``, one ``fsync``, however many commits ride along.

        ``frames`` is ``(generation, encoded_frame)`` pairs in the
        contiguous generation order the log requires (each frame built
        by :func:`encode_frame` / :func:`frame_from_body`). This is
        the group-commit amortization point: a leader draining N
        queued committers pays the syscall pair once instead of N
        times. Failure semantics match :meth:`append` — any write or
        fsync error truncates the partial batch away, so the log never
        buries garbage mid-file.
        """
        handle = self._handle
        if handle is None:
            raise CodecError("write-ahead log is closed")
        if not frames:
            return
        expected = self.last_generation + 1
        for generation, _ in frames:
            if generation != expected:
                raise CodecError(
                    f"non-contiguous WAL append: generation "
                    f"{generation} after {expected - 1}")
            expected += 1
        blob = b"".join(encoded for _, encoded in frames)
        _maybe_crash("pre-append")
        if _crash_armed("mid-append"):
            # Torn-write simulation: half the batch reaches the OS,
            # then the process dies. Recovery must truncate the torn
            # frame (and keep any fully-written frames before it).
            handle.write(blob[:max(1, len(blob) // 2)])
            handle.flush()
            _kill_self()
        if len(frames) > 1 and _crash_armed("batch-mid-write"):
            # Leader death mid-batch: the batch's first frame is fully
            # written and flushed, the rest never happen. Recovery
            # must land on a committed prefix *inside* the batch.
            handle.write(frames[0][1])
            handle.flush()
            _kill_self()
        try:
            handle.write(blob)
            handle.flush()
            _maybe_crash("pre-fsync")
            if self._fsync:
                os.fsync(handle.fileno())
            _maybe_crash("post-fsync")
        except BaseException:
            try:
                handle.truncate(self.size)
                handle.flush()
                os.fsync(handle.fileno())
            except OSError:
                pass
            raise
        self.size += len(blob)
        self.last_generation = frames[-1][0]
        self.frames_appended += len(frames)
        self.sync_batches += 1

    def read_from(self, offset: int) -> bytes:
        """The raw log bytes from ``offset`` to the current end —
        the frames a compaction pinned *after* its snapshot state."""
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            return handle.read(self.size - offset)

    def rewrite_temp(self, base_generation: int, tail: bytes) -> str:
        """An fsynced temp file holding ``header(base) + tail``; the
        compaction protocol replaces the log with it *after* the new
        snapshot is in place."""
        return self._write_temp(
            _header_bytes(base_generation, self.interned) + tail)

    def swap(self, temp_name: str, base_generation: int) -> None:
        """Atomically adopt a :meth:`rewrite_temp` file as the log.

        ``last_generation`` is unchanged: the tail frames carried over
        keep the log's head exactly where the writer lock last left it.
        """
        size = os.path.getsize(temp_name)
        os.replace(temp_name, self._path)
        fsync_directory(self._path.parent)
        if self._handle is not None:
            self._handle.close()
        self._handle = open(self._path, "ab")
        self.base_generation = base_generation
        self.size = size

    def rebase(self, generation: int) -> None:
        """Reset to an empty log at ``generation`` (frames discarded).

        Used when a snapshot is ahead of every logged frame — the
        frames are already reflected in it, and the next append must
        chain from the snapshot's generation.
        """
        self._create(generation)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CommitTicket:
    """One writer's place in the group-commit queue.

    Created under the owning store's writer lock once the commit's
    generation is assigned and its frame encoded; carries everything
    the batch leader needs to make the commit durable and visible:
    the encoded ``frame`` for :meth:`WriteAheadLog.append_batch`, the
    ``state`` to publish once the batch's fsync retires, and an opaque
    ``cache_step`` the store uses to advance its query-result cache in
    generation order. ``done``/``error`` are written by the leader
    under the committer's condition lock and read by the follower
    after it is released.
    """

    __slots__ = ("generation", "frame", "state", "cache_step",
                 "done", "error")

    def __init__(self, generation: int, frame: bytes, state=None,
                 cache_step=None):
        self.generation = generation
        self.frame = frame
        self.state = state
        self.cache_step = cache_step
        self.done = False
        self.error: BaseException | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = ("done" if self.done else
                  "failed" if self.error else "pending")
        return f"CommitTicket(generation={self.generation}, {status})"


class GroupCommitter:
    """Leader/follower group commit over one :class:`WriteAheadLog`.

    Writers :meth:`register` their ticket (in generation order, under
    the store's writer lock) and then call :meth:`commit`, which
    blocks until the ticket's durability point. The first committer to
    find no leader active elects itself leader; it drains every queued
    ticket, appends them all with a single
    :meth:`WriteAheadLog.append_batch` (one ``write``, one ``fsync``),
    invokes ``on_durable(batch)`` so the store can publish the batch's
    final MVCC state, and only then wakes the followers. Writers that
    arrive while a batch is in flight queue up and form the *next*
    batch — under contention the fsync cost amortizes across the whole
    queue, which is the point.

    ``commit_interval`` (seconds, clamped to at most 1.0) makes a
    fresh leader linger before draining so even non-overlapping
    writers coalesce; zero (the default) drains immediately.

    ``commit_lock``, when given, is held across *append + on_durable*:
    the owning store passes its publish lock here so the pair
    "(log contents, published state)" mutates atomically with respect
    to compaction's pin-and-swap sections.

    If the batch append fails, the leader calls ``on_abort(batch,
    exc)`` — *outside* ``commit_lock``, so the store may take its own
    writer lock to reset its head chain without deadlocking — and
    every ticket in the batch re-raises the append error from its
    :meth:`commit` call.
    """

    def __init__(self, log: WriteAheadLog, *,
                 commit_interval: float = 0.0,
                 commit_lock=None,
                 on_durable: Callable[[list[CommitTicket]], None]
                 | None = None,
                 on_abort: Callable[[list[CommitTicket], BaseException],
                                    None] | None = None):
        self._log = log
        self._interval = min(max(commit_interval, 0.0), 1.0)
        self._commit_lock = commit_lock
        self._on_durable = on_durable
        self._on_abort = on_abort
        self._cond = threading.Condition()
        self._queue: list[CommitTicket] = []
        self._leader_active = False
        #: Batches retired and the largest one seen — the committer's
        #: own view of how much coalescing happened.
        self.batches = 0
        self.max_batch = 0

    def register(self, ticket: CommitTicket) -> None:
        """Enqueue a ticket for the next batch.

        Callers must serialize registration (the store's writer lock
        does) so tickets arrive in generation order — the order
        :meth:`WriteAheadLog.append_batch` requires.
        """
        with self._cond:
            self._queue.append(ticket)

    def commit(self, ticket: CommitTicket) -> None:
        """Block until ``ticket`` is durable (or its batch failed).

        Exactly one concurrent caller acts as leader at a time; the
        rest wait on the condition. Re-raises the batch's append error
        on failure.
        """
        while True:
            with self._cond:
                if ticket.done or ticket.error is not None:
                    break
                if self._leader_active:
                    self._cond.wait()
                    continue
                self._leader_active = True
            try:
                self._lead()
            finally:
                with self._cond:
                    self._leader_active = False
                    self._cond.notify_all()
        if ticket.error is not None:
            raise ticket.error

    def _lead(self) -> None:
        """Drain the queue and retire one batch as its leader."""
        if self._interval > 0.0:
            # Linger so non-overlapping writers can still coalesce.
            time.sleep(self._interval)
        with self._cond:
            batch = self._queue
            self._queue = []
        if not batch:
            return
        try:
            if self._commit_lock is not None:
                with self._commit_lock:
                    self._log.append_batch(
                        [(t.generation, t.frame) for t in batch])
                    if self._on_durable is not None:
                        self._on_durable(batch)
            else:
                self._log.append_batch(
                    [(t.generation, t.frame) for t in batch])
                if self._on_durable is not None:
                    self._on_durable(batch)
        except BaseException as exc:
            # Outside commit_lock by now: the abort hook may take the
            # store's writer lock to reset its head chain.
            if self._on_abort is not None:
                self._on_abort(batch, exc)
            self.fail(batch, exc)
            return
        self.batches += 1
        self.max_batch = max(self.max_batch, len(batch))
        with self._cond:
            for t in batch:
                t.done = True
            self._cond.notify_all()

    def drain_pending(self) -> list[CommitTicket]:
        """Remove and return every queued-but-unbatched ticket.

        The store's abort hook uses this: once a batch append fails,
        tickets queued behind it were built on a head chain that no
        longer exists, so they must fail too rather than be appended
        with generations recovery would never reconstruct.
        """
        with self._cond:
            doomed = self._queue
            self._queue = []
        return doomed

    def fail(self, tickets: Sequence[CommitTicket],
             error: BaseException) -> None:
        """Mark ``tickets`` failed with ``error`` and wake waiters."""
        if not tickets:
            return
        with self._cond:
            for t in tickets:
                t.error = error
            self._cond.notify_all()
