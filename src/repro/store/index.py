"""Key indexing for data sets.

Definition 12 as written is an all-pairs compatibility scan — O(|S1|·|S2|).
The paper (§4) defers implementation concerns; this module supplies the
obvious accelerator: a hash index on key signatures.

The index is *exact*: for the object kinds that can appear under a key
attribute, Definition 6 compatibility degenerates to plain equality
(atoms, markers, ``⊥``-free or-values compared set-wise, complete sets
compared whole), so equal-signature hashing finds exactly the compatible
pairs. The two remaining kinds need care:

* ``⊥`` and partial sets are compatible with *nothing* — data carrying
  them under a key attribute can never pair and are classified
  :data:`NEVER_MATCHES`;
* tuple-valued key attributes recurse with the same ``K``
  (Definition 6(5)), which is not plain equality — such data are
  classified :data:`UNINDEXABLE` and fall back to pairwise scanning.

``repro.store.ops`` builds the fast Definition 12 operations on top;
benchmark S5 measures the speedup and verifies result equality against
the naive scan (the ablation DESIGN.md calls out).
"""

from __future__ import annotations

from typing import AbstractSet, Hashable, Iterable

from repro.core.intern import is_interned as _is_interned
from repro.core.intern import on_clear as _on_clear
from repro.core.data import Data
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)

__all__ = ["NEVER_MATCHES", "UNINDEXABLE", "signature", "KeyIndex"]

#: Sentinel: this datum cannot be compatible with anything (⊥ or a
#: partial set under a key attribute).
NEVER_MATCHES = "never"

#: Sentinel: this datum needs pairwise checking (tuple under a key
#: attribute, or a non-tuple object).
UNINDEXABLE = "scan"


def _attr_signature(value: SSObject) -> Hashable | None:
    """Hashable stand-in for one key attribute value, or ``None`` when
    compatibility is not plain equality for this kind."""
    if isinstance(value, (Atom, Marker, CompleteSet)):
        return value
    if isinstance(value, OrValue):
        if value.contains_bottom():
            return NEVER_MATCHES
        return value
    return None


# Signature memo for hash-consed objects: the intern pool keeps strong
# references, so ids stay valid; the pool's clear hook drops the memo.
_SIG_MEMO: dict[tuple[int, frozenset[str]], Hashable] = {}
_on_clear(_SIG_MEMO.clear)


def signature(datum: Data, key: AbstractSet[str]) -> Hashable:
    """Classify a datum for the index.

    Returns a hashable signature tuple for indexable data, or one of
    :data:`NEVER_MATCHES` / :data:`UNINDEXABLE`. Signatures of interned
    objects are memoized by identity, so rebuilding indexes over a
    hash-consed store never re-walks an object twice.
    """
    obj = datum.object
    if _is_interned(obj):
        memo_key = (id(obj), frozenset(key))
        cached = _SIG_MEMO.get(memo_key)
        if cached is None:
            cached = _signature_impl(obj, key)
            _SIG_MEMO[memo_key] = cached
        return cached
    return _signature_impl(obj, key)


def _signature_impl(obj: SSObject, key: AbstractSet[str]) -> Hashable:
    if not isinstance(obj, Tuple):
        # Non-tuple objects follow the general Definition 6 cases, where
        # compatibility IS equality for indexable kinds; markers, atoms,
        # or-values and complete sets index directly. ⊥ and partial sets
        # are compatible with nothing.
        if obj is BOTTOM or isinstance(obj, PartialSet):
            return NEVER_MATCHES
        attr = _attr_signature(obj)
        if attr == NEVER_MATCHES:
            return NEVER_MATCHES
        return ("whole", attr)
    parts: list[tuple[str, Hashable]] = []
    for label in sorted(key):
        value = obj.get(label)
        if value is BOTTOM or isinstance(value, PartialSet):
            return NEVER_MATCHES
        attr = _attr_signature(value)
        if attr == NEVER_MATCHES:
            return NEVER_MATCHES
        if attr is None:
            return UNINDEXABLE
        parts.append((label, attr))
    return ("tuple", tuple(parts))


class KeyIndex:
    """Hash index of a data collection by key signature.

    The index is *incremental*: :meth:`add` and :meth:`remove` maintain
    it one datum at a time, so a long-lived accumulator (a
    :class:`~repro.store.database.Database`, or the bulk-merge fold in
    :mod:`repro.store.bulk`) is indexed once and updated in place
    instead of being rebuilt after every change.
    """

    def __init__(self, data: Iterable[Data] = (),
                 key: AbstractSet[str] = frozenset()):
        self._key = frozenset(key)
        self.buckets: dict[Hashable, list[Data]] = {}
        #: Data requiring pairwise compatibility checks.
        self.scan_list: list[Data] = []
        #: Data that can never pair with anything.
        self.never_list: list[Data] = []
        for datum in data:
            self.add(datum)

    @property
    def key(self) -> frozenset[str]:
        return self._key

    @classmethod
    def restore(cls, key: AbstractSet[str],
                buckets: dict[Hashable, list[Data]],
                scan_list: list[Data],
                never_list: list[Data]) -> "KeyIndex":
        """Rehydrate an index from persisted structures without
        recomputing any signatures.

        The caller (binary snapshot load) vouches that ``buckets`` keys
        are exactly what :func:`signature` would produce for their data
        under ``key`` — the snapshot layer guarantees this by persisting
        the signatures alongside the data and validating the pairing
        digest before restoring.
        """
        index = cls((), key)
        index.buckets = buckets
        index.scan_list = scan_list
        index.never_list = never_list
        return index

    def add(self, datum: Data) -> None:
        """Insert one datum."""
        classified = signature(datum, self._key)
        if classified == NEVER_MATCHES:
            self.never_list.append(datum)
        elif classified == UNINDEXABLE:
            self.scan_list.append(datum)
        else:
            self.buckets.setdefault(classified, []).append(datum)

    def remove(self, datum: Data) -> bool:
        """Remove one datum (by equality); ``False`` when absent.

        The signature pins the only place the datum can live, so
        removal touches a single bucket — or one of the two side lists
        — rather than the whole index.
        """
        classified = signature(datum, self._key)
        if classified == NEVER_MATCHES:
            target = self.never_list
        elif classified == UNINDEXABLE:
            target = self.scan_list
        else:
            bucket = self.buckets.get(classified)
            if bucket is None:
                return False
            try:
                bucket.remove(datum)
            except ValueError:
                return False
            if not bucket:
                del self.buckets[classified]
            return True
        try:
            target.remove(datum)
        except ValueError:
            return False
        return True

    def patched(self, removed: Iterable[Data],
                added: Iterable[Data]) -> "KeyIndex":
        """A new index reflecting a batch delta; ``self`` is untouched.

        Copy-on-write: the buckets map is shallow-copied and each
        bucket (or side list) is copied at most once, the first time the
        delta touches it — untouched buckets stay shared with the old
        index. Store layers that publish immutable state records use
        this instead of the in-place :meth:`add`/:meth:`remove`.
        """
        index = KeyIndex.__new__(KeyIndex)
        index._key = self._key
        index.buckets = dict(self.buckets)
        index.scan_list = self.scan_list
        index.never_list = self.never_list
        copied: set[Hashable] = set()
        copied_scan = copied_never = False

        for datum in removed:
            classified = signature(datum, self._key)
            if classified == NEVER_MATCHES:
                if not copied_never:
                    index.never_list = list(index.never_list)
                    copied_never = True
                try:
                    index.never_list.remove(datum)
                except ValueError:
                    pass
            elif classified == UNINDEXABLE:
                if not copied_scan:
                    index.scan_list = list(index.scan_list)
                    copied_scan = True
                try:
                    index.scan_list.remove(datum)
                except ValueError:
                    pass
            else:
                bucket = index.buckets.get(classified)
                if bucket is None:
                    continue
                if classified not in copied:
                    bucket = list(bucket)
                    index.buckets[classified] = bucket
                    copied.add(classified)
                try:
                    bucket.remove(datum)
                except ValueError:
                    continue
                if not bucket:
                    del index.buckets[classified]

        for datum in added:
            classified = signature(datum, self._key)
            if classified == NEVER_MATCHES:
                if not copied_never:
                    index.never_list = list(index.never_list)
                    copied_never = True
                index.never_list.append(datum)
            elif classified == UNINDEXABLE:
                if not copied_scan:
                    index.scan_list = list(index.scan_list)
                    copied_scan = True
                index.scan_list.append(datum)
            else:
                bucket = index.buckets.get(classified)
                if bucket is None or classified not in copied:
                    bucket = list(bucket) if bucket is not None else []
                    index.buckets[classified] = bucket
                    copied.add(classified)
                bucket.append(datum)
        return index

    def candidates(self, datum: Data) -> list[Data]:
        """Data that *might* be compatible with ``datum``.

        Exact bucket mates for indexable data (a datum with a tuple-valued
        key attribute cannot be compatible with one whose attribute is
        non-tuple, so the scan list is excluded); nothing for
        never-matching data; the full collection for unindexable probes.
        """
        classified = signature(datum, self._key)
        if classified == NEVER_MATCHES:
            return []
        if classified == UNINDEXABLE:
            return self.everything()
        return self.buckets.get(classified, [])

    def everything(self) -> list[Data]:
        """All indexed data (bucket order, then scan, then never)."""
        out: list[Data] = []
        for bucket in self.buckets.values():
            out.extend(bucket)
        out.extend(self.scan_list)
        out.extend(self.never_list)
        return out

    def __len__(self) -> int:
        return (sum(len(bucket) for bucket in self.buckets.values())
                + len(self.scan_list) + len(self.never_list))
