"""Thread-safe caches for the concurrent serving layer.

Two caches share the same LRU core:

* :class:`LRUCache` — a small mutex-guarded mapping with *move-to-end
  promotion on hit* (a true LRU, unlike the FIFO ``dict.pop(next(...))``
  eviction it replaces). :meth:`LRUCache.get_or_add` gives the
  parsed-query cache its "one canonical value per key" guarantee without
  holding the lock across the factory call.

* :class:`QueryResultCache` — the epoch-invalidated query-result cache.
  Every entry is tagged with the database *generation* it was computed
  at; a lookup hits only when the tag matches the reader's generation
  exactly, so a stale entry can never be served. On each write the
  committing writer re-examines the live entries against the write's
  *delta* (the data actually removed/added):

  - an entry whose condition is **positive** (its negation-normal form
    has no negated leaves and no foreign leaf kinds) can only gain or
    lose matches through data that reach one of its *footprint paths*
    (every positive leaf holds existentially over the values its path
    reaches). If no delta datum reaches any footprint path, the result
    is provably unchanged, and the entry is **re-tagged** to the new
    generation instead of evicted — hot read-mostly workloads keep
    their cache across unrelated writes;
  - everything else (negated leaves, ``select`` without a ``where``,
    unknown condition subclasses, entries left behind by laggard
    readers at older generations) is evicted.

  Entries are not limited to single-set selections: aggregate results
  and two-input join results cache under the same machinery. A join
  entry's footprint is the *union* of both sides' condition paths plus
  the join-key paths
  (:func:`repro.query.compile.join_invalidation_profile`), and it is
  ``safe`` only when both sides are positive — so a write that touches
  only the probe side still evicts or re-tags correctly, never serving
  a stale joined result.

  Touch information for *indexed* paths comes for free from the
  copy-on-write :meth:`~repro.store.attr_index.AttrIndex.patched`
  postings delta; only footprint paths outside the attribute index are
  re-walked over the delta (capped — a write that rewrites more data
  than :data:`PRECISION_CAP` falls back to treating those paths as
  touched).

The memory model is the CPython one: entries are only mutated under the
cache mutex, and the generation tag is re-checked against the reader's
pinned state on every hit, so readers never observe a result from a
different generation than the one they asked for.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Iterable

from repro.query.paths import path_exists

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.data import Data, DataSet

__all__ = ["LRUCache", "QueryResultCache", "PRECISION_CAP"]

#: A parsed attribute path.
Steps = tuple[str, ...]

#: Writes whose delta exceeds this many data stop re-walking unindexed
#: footprint paths and conservatively treat them as touched.
PRECISION_CAP = 128


class LRUCache:
    """A mutex-guarded LRU mapping: hits promote, overflow evicts the
    least recently used entry.

    ``capacity <= 0`` disables the cache entirely (every ``get`` misses,
    every ``put`` is a no-op) so callers never need a second code path.
    """

    def __init__(self, capacity: int):
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value, promoting the entry to most recent."""
        with self._lock:
            try:
                self._entries.move_to_end(key)
            except KeyError:
                return default
            return self._entries[key]

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh an entry, evicting the LRU on overflow."""
        if self._capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def get_or_add(self, key: Hashable,
                   factory: Callable[[], object]) -> object:
        """Return the cached value, computing and caching it on a miss.

        The factory runs *outside* the lock (it may be slow or raise);
        when two threads race, the first stored value wins and both
        callers observe the same object thereafter.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        computed = factory()
        if self._capacity <= 0:
            return computed
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            self._entries[key] = computed
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            return computed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass(slots=True)
class _ResultEntry:
    generation: int
    result: "DataSet"
    #: Footprint: every path the condition's leaves mention.
    paths: frozenset[Steps]
    #: True when the condition is positive (see module docs) and the
    #: footprint argument applies; False forces eviction on any write.
    safe: bool


class QueryResultCache:
    """Generation-tagged LRU of query results with precise invalidation.

    Readers call :meth:`lookup`/:meth:`store` with the generation of the
    state they executed against; the single writer calls :meth:`commit`
    once per mutation batch, *before* publishing the new state, so no
    reader at the new generation can ever hit a stale entry.
    """

    def __init__(self, capacity: int):
        self._capacity = capacity
        self._entries: OrderedDict[str, _ResultEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.retags = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def lookup(self, text: str, generation: int) -> "DataSet | None":
        """The cached result for ``text`` at exactly ``generation``."""
        if self._capacity <= 0:
            return None
        with self._lock:
            entry = self._entries.get(text)
            if entry is None or entry.generation != generation:
                self.misses += 1
                return None
            self._entries.move_to_end(text)
            self.hits += 1
            return entry.result

    def store(self, text: str, generation: int, result: "DataSet",
              paths: frozenset[Steps], safe: bool) -> None:
        """Cache a freshly computed result.

        A laggard reader (one that executed against an already-replaced
        state) never clobbers a newer entry: the store is dropped when
        an entry tagged with a later generation is present.
        """
        if self._capacity <= 0:
            return
        with self._lock:
            entry = self._entries.get(text)
            if entry is not None and entry.generation > generation:
                return
            self._entries[text] = _ResultEntry(
                generation, result, paths, safe)
            self._entries.move_to_end(text)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def commit(self, old_generation: int, new_generation: int,
               delta: "Iterable[Data]",
               touched_indexed: frozenset[Steps],
               indexed_paths: frozenset[Steps]) -> None:
        """Writer-side epoch step: re-tag unaffected entries, evict the
        rest.

        ``delta`` is the net set of data the write removed plus added;
        ``touched_indexed`` the indexed paths the attribute-index patch
        saw those data reach (exact, computed as a by-product of the
        copy-on-write patch); ``indexed_paths`` the paths the index
        covers.
        """
        if self._capacity <= 0 or not self._entries:
            return
        delta = list(delta)
        with self._lock:
            candidates = [
                (text, entry) for text, entry in self._entries.items()
                if entry.safe and entry.generation == old_generation]
            survivors_possible = {
                path
                for _, entry in candidates for path in entry.paths}
            touched = {path for path in survivors_possible
                       if path in indexed_paths
                       and path in touched_indexed}
            unindexed = [path for path in survivors_possible
                         if path not in indexed_paths]
            if unindexed:
                if len(delta) <= PRECISION_CAP:
                    for path in unindexed:
                        if any(path_exists(datum.object, path)
                               for datum in delta):
                            touched.add(path)
                else:
                    touched.update(unindexed)
            surviving = {
                text for text, entry in candidates
                if not (entry.paths & touched)}
            for text in list(self._entries):
                entry = self._entries[text]
                if text in surviving:
                    entry.generation = new_generation
                    self.retags += 1
                else:
                    del self._entries[text]
                    self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self.evictions += len(self._entries)
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters for benchmarks and diagnostics."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "retags": self.retags,
                "evictions": self.evictions,
            }
