"""Storage layer: key indexing, accelerated operations and persistence.

The paper defers implementation; this package provides it:

* :class:`~repro.store.index.KeyIndex` — hash index over key signatures
  (compatibility is plain equality for indexable kinds; see the module
  docs for the exceptions);
* :func:`~repro.store.ops.indexed_union` et al. — Definition 12 in
  O(n + m) instead of O(n·m), bit-identical results (ablation S5);
* :func:`~repro.store.bulk.blocked_union` /
  :class:`~repro.store.bulk.IncrementalUnion` — the k-way
  signature-blocked (optionally parallel) bulk-merge pipeline;
* :class:`~repro.store.database.Database` — an updatable, file-backed
  collection with incrementally maintained marker and key indexes,
  MVCC generation snapshots (:class:`~repro.store.database.DatabaseView`
  pins one generation for lock-free reads) and an epoch-invalidated
  query-result cache (:class:`~repro.store.cache.QueryResultCache`);
* :class:`~repro.store.wal.WriteAheadLog` — incremental durability:
  ``Database.open(path, durable=True)`` logs every committed batch's
  net diff (CRC-framed, fsynced before the MVCC publish), replays
  log-on-top-of-snapshot on reopen, compacts past a size threshold
  and recovers to any logged generation (``Database.recover_to``);
* :class:`~repro.store.columnar.ColumnStore` — the physical layout:
  canonical tuples shredded into per-attribute columns (flat primitive
  arrays plus present/irregular sidecar bitsets, too-irregular rows in
  a row-fallback residue) powering the planner's columnar scan
  strategy and the parallel executor's column-shard wire format.
"""

from repro.store.attr_index import AttrIndex
from repro.store.bulk import (
    IncrementalUnion,
    UnionDiff,
    blocked_union,
    fold_union,
)
from repro.store.cache import LRUCache, QueryResultCache
from repro.store.columnar import (
    Column,
    ColumnStore,
    bit_positions,
    read_column_shard,
    write_column_shard,
)
from repro.store.database import Database, DatabaseView
from repro.store.index import (
    NEVER_MATCHES,
    UNINDEXABLE,
    KeyIndex,
    signature,
)
from repro.store.ops import (
    indexed_difference,
    indexed_intersection,
    indexed_union,
)
from repro.store.fsutil import fsync_directory
from repro.store.wal import (
    CommitTicket,
    GroupCommitter,
    WalFrame,
    WalScan,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "AttrIndex",
    "KeyIndex", "signature", "NEVER_MATCHES", "UNINDEXABLE",
    "indexed_union", "indexed_intersection", "indexed_difference",
    "blocked_union", "fold_union", "IncrementalUnion", "UnionDiff",
    "Database", "DatabaseView", "LRUCache", "QueryResultCache",
    "WriteAheadLog", "WalFrame", "WalScan", "scan_wal",
    "CommitTicket", "GroupCommitter", "fsync_directory",
    "ColumnStore", "Column", "bit_positions",
    "write_column_shard", "read_column_shard",
]
