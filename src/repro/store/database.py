"""A small persistent database of semistructured data.

The paper's §4 names "how to implement the semistructured data model"
as open work; this module is that implementation at library scale:

* a :class:`Database` holds one :class:`~repro.core.data.DataSet` plus a
  marker index and lazily built, *incrementally maintained* key indexes
  — ``insert``/``remove``/``merge_in`` patch every live
  :class:`~repro.store.index.KeyIndex` instead of invalidating it;
* content-addressed updates: ``insert``/``remove`` return nothing and
  mutate the database, but all returned data values stay immutable;
* durability through atomic file replacement — write to a temp file,
  ``flush`` + ``fsync`` it (and the containing directory on POSIX),
  then ``os.replace`` — so a crash never leaves a half-written or
  silently empty database behind. Two on-disk formats:
  ``format="json"`` (the tagged-JSON codec, human-greppable) and
  ``format="binary"`` (:mod:`repro.binary_codec` — deduplicated value
  table, streamed data, and the key/attribute index signatures
  persisted alongside the data so a cold :meth:`load` starts
  index-warm: the saved postings are validated against a content
  digest of the dataset section and only rebuilt on mismatch);
* ``merge_in`` ingests another source as a net
  :class:`~repro.store.bulk.UnionDiff` against the maintained index
  (optionally through the parallel blocked pipeline), so an ingest
  touches only the data the ``∪K`` step actually changed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Callable, Hashable, Iterable, Iterator

from repro import binary_codec
from repro.binary_codec import Decoder, Encoder
from repro.core.compatibility import check_key
from repro.core.data import Data, DataSet
from repro.core.errors import CodecError
from repro.core.intern import intern_data
from repro.core.objects import Marker, SSObject, Tuple
from repro.json_codec.codec import decode_dataset, encode_dataset
from repro.store.attr_index import AttrIndex
from repro.store.bulk import blocked_union, union_diff
from repro.store.index import KeyIndex

__all__ = ["Database"]

#: Format marker written into every JSON database file.
_FORMAT = "repro-database"
_VERSION = 1

#: Magic prefix of binary database files (followed by the container
#: version, the embedded codec version, and a flags varint).
_BINARY_MAGIC = b"RPDB"
_BINARY_VERSION = 1

#: Container flag: the store interns its objects.
_FLAG_INTERNED = 1

#: Signature kinds in the persisted key-index section.
_SIG_WHOLE = 0
_SIG_TUPLE = 1

#: Parsed textual queries cached per database (plans and compiled
#: predicates live on the cached condition objects).
_QUERY_CACHE_SIZE = 128


class Database:
    """An updatable, persistable collection of semistructured data.

    With ``intern_objects=True`` (the default) every stored datum is
    hash-consed on the way in (:mod:`repro.core.intern`): structurally
    equal objects share one canonical representative, so key-index
    signatures, compatibility checks and Definition 12 merges all hit
    the identity-keyed memo tables. Interning preserves equality, so
    lookups and results are unchanged — only faster. Pass
    ``intern_objects=False`` to store data exactly as given.
    """

    def __init__(self, data: Iterable[Data] = (), *,
                 intern_objects: bool = True,
                 index_paths: Iterable[str] = ()):
        self._intern = intern_objects
        self._data: set[Data] = set(
            self._canonical(datum) for datum in data)
        self._marker_index: dict[Marker, set[Data]] = {}
        self._key_indexes: dict[frozenset[str], KeyIndex] = {}
        self._attr_index = AttrIndex(index_paths)
        self._snapshot_cache: DataSet | None = None
        self._query_cache: dict[str, object] = {}
        for datum in self._data:
            self._index_markers(datum)
            self._attr_index.add(datum)

    def _canonical(self, datum: Data) -> Data:
        return intern_data(datum) if self._intern else datum

    # -- basic collection protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, datum: object) -> bool:
        return datum in self._data

    def __iter__(self) -> Iterator[Data]:
        return iter(self.snapshot())

    def snapshot(self) -> DataSet:
        """An immutable view of the current contents.

        Snapshots are cached between mutations, so read-heavy
        workloads (the planned query path) pay the O(n) freeze once.
        """
        if self._snapshot_cache is None:
            self._snapshot_cache = DataSet(self._data)
        return self._snapshot_cache

    # -- updates ---------------------------------------------------------------

    def insert(self, datum: Data) -> bool:
        """Insert a datum; returns ``False`` when already present."""
        datum = self._canonical(datum)
        if datum in self._data:
            return False
        self._data.add(datum)
        self._snapshot_cache = None
        self._index_markers(datum)
        self._attr_index.add(datum)
        for index in self._key_indexes.values():
            index.add(datum)
        return True

    def insert_all(self, data: Iterable[Data]) -> int:
        """Insert many; returns how many were new."""
        return sum(1 for datum in data if self.insert(datum))

    def remove(self, datum: Data) -> bool:
        """Remove a datum; returns ``False`` when absent."""
        if datum not in self._data:
            return False
        self._data.discard(datum)
        self._snapshot_cache = None
        self._unindex_markers(datum)
        self._attr_index.remove(datum)
        for index in self._key_indexes.values():
            index.remove(datum)
        return True

    def _index_markers(self, datum: Data) -> None:
        for marker in datum.markers:
            self._marker_index.setdefault(marker, set()).add(datum)

    def _unindex_markers(self, datum: Data) -> None:
        for marker in datum.markers:
            entries = self._marker_index.get(marker)
            if entries is not None:
                entries.discard(datum)
                if not entries:
                    del self._marker_index[marker]

    def update(self, marker: Marker | str,
               transform: "Callable[[Data], Data]") -> int:
        """Rewrite every datum carrying ``marker`` through ``transform``.

        Returns how many data were actually changed. ``transform``
        receives each datum and returns its replacement (data are
        immutable, so updates are replacements).
        """
        targets = list(self.by_marker(marker))
        changed = 0
        for datum in targets:
            replacement = transform(datum)
            if not isinstance(replacement, Data):
                raise CodecError(
                    "update transform must return a Data value")
            if replacement != datum:
                self.remove(datum)
                self.insert(replacement)
                changed += 1
        return changed

    def set_attribute(self, marker: Marker | str, label: str,
                      value: SSObject) -> int:
        """Set one tuple attribute on every datum carrying ``marker``.

        Binding to ``⊥`` removes the attribute. Non-tuple objects are
        left untouched. Returns the number of data changed.
        """

        def rewrite(datum: Data) -> Data:
            if isinstance(datum.object, Tuple):
                return Data(datum.marker,
                            datum.object.with_field(label, value))
            return datum

        return self.update(marker, rewrite)

    # -- lookups ----------------------------------------------------------------

    def by_marker(self, marker: Marker | str) -> DataSet:
        """All data whose marker part mentions ``marker``."""
        if isinstance(marker, str):
            marker = Marker(marker)
        return DataSet(self._marker_index.get(marker, set()))

    def _key_index(self, key: frozenset[str]) -> KeyIndex:
        index = self._key_indexes.get(key)
        if index is None:
            index = KeyIndex(self._data, key)
            self._key_indexes[key] = index
        return index

    def compatible_with(self, datum: Data,
                        key: Iterable[str]) -> DataSet:
        """All stored data compatible with ``datum`` wrt ``key``
        (index-accelerated)."""
        from repro.core.compatibility import compatible_data

        checked = check_key(key)
        index = self._key_index(checked)
        return DataSet(
            candidate for candidate in index.candidates(datum)
            if compatible_data(datum, candidate, checked))

    # -- attribute indexes -------------------------------------------------------

    @property
    def indexed_paths(self) -> frozenset[tuple[str, ...]]:
        """The attribute paths the query planner can probe."""
        return self._attr_index.paths

    def create_index(self, path: str) -> None:
        """Start indexing an attribute path (backfilled immediately).

        Queries whose conditions constrain the path with ``Eq``,
        ``Exists`` or ``Contains`` then probe the inverted index
        instead of scanning; ``insert``/``remove``/``update``/
        ``merge_in`` keep it current incrementally.
        """
        self._attr_index.add_path(path, self._data)

    def _parsed(self, text: str):
        spec = self._query_cache.get(text)
        if spec is None:
            from repro.query.parser import parse_query_spec

            spec = parse_query_spec(text)
            if len(self._query_cache) >= _QUERY_CACHE_SIZE:
                self._query_cache.pop(next(iter(self._query_cache)))
            self._query_cache[text] = spec
        return spec

    def query(self, text: str, *, naive: bool = False) -> DataSet:
        """Run a textual query (``select ... where ...``) on the
        current contents.

        Parsed queries are cached by text, and execution routes through
        the planner with this database's attribute index attached.
        ``naive=True`` forces the definitional full scan (the oracle).
        """
        query = self._parsed(text).query(self.snapshot(),
                                         index=self._attr_index)
        return query.run(naive=naive)

    def explain(self, text: str):
        """The :class:`~repro.query.planner.Plan` for a textual query."""
        return self._parsed(text).query(self.snapshot(),
                                        index=self._attr_index).explain()

    # -- merging ------------------------------------------------------------------

    def merge_in(self, source: DataSet, key: Iterable[str], *,
                 parallel: int = 0) -> int:
        """Union a new source into the database (Definition 12).
        Returns the resulting size.

        The step is applied as a net diff: only the data the ``∪K``
        actually replaced or introduced touch the marker index and the
        maintained key indexes. ``parallel > 0`` routes the union
        through the blocked pipeline's worker pool
        (:func:`repro.store.bulk.blocked_union`); results are identical.
        """
        checked = check_key(key)
        if self._intern:
            source = DataSet(intern_data(datum) for datum in source)
        elif not isinstance(source, DataSet):
            source = DataSet(source)
        if parallel:
            merged = set(blocked_union([self.snapshot(), source], checked,
                                       parallel=parallel))
            removed = tuple(d for d in self._data if d not in merged)
            added = tuple(d for d in merged if d not in self._data)
        else:
            diff = union_diff(self._data, self._key_index(checked),
                              source, checked)
            removed, added = diff.removed, diff.added
        for datum in removed:
            self._data.discard(datum)
            self._unindex_markers(datum)
            self._attr_index.remove(datum)
            for index in self._key_indexes.values():
                index.remove(datum)
        for datum in added:
            datum = self._canonical(datum)
            self._data.add(datum)
            self._index_markers(datum)
            self._attr_index.add(datum)
            for index in self._key_indexes.values():
                index.add(datum)
        if removed or added:
            self._snapshot_cache = None
        return len(self._data)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path, *, format: str = "json") -> None:
        """Write the database to ``path`` atomically and durably.

        The payload goes to a temp file in the target directory, is
        flushed and fsynced, and only then ``os.replace``d over the
        target (the directory entry is fsynced too on POSIX) — a crash
        at any point leaves either the old file or the new one, never a
        torn or empty write.

        ``format="binary"`` writes the :mod:`repro.binary_codec`
        container: the dataset streamed through a deduplicating value
        table, followed by the current key-index and attribute-index
        signatures keyed to a content digest, so :meth:`load` can
        restore the indexes without recomputing a single signature.
        """
        if format not in ("json", "binary"):
            raise CodecError(
                f"unknown database format {format!r} "
                f"(expected 'json' or 'binary')")
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp")
        try:
            if format == "binary":
                with os.fdopen(descriptor, "wb") as handle:
                    self._write_binary(handle)
                    handle.flush()
                    os.fsync(handle.fileno())
            else:
                payload = {
                    "format": _FORMAT,
                    "version": _VERSION,
                    "dataset": encode_dataset(self.snapshot()),
                }
                with os.fdopen(descriptor, "w") as handle:
                    json.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(temp_name, target)
            _fsync_directory(target.parent)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    @classmethod
    def load(cls, path: str | Path, *,
             format: str | None = None) -> "Database":
        """Read a database written by :meth:`save`.

        The on-disk format is auto-detected (binary files start with a
        magic prefix); pass ``format="json"``/``"binary"`` to force.
        Binary loads restore the persisted key/attribute indexes when
        the stored content digest matches the dataset section, and
        rebuild them otherwise.
        """
        if format is None:
            try:
                with open(path, "rb") as probe:
                    magic = probe.read(len(_BINARY_MAGIC))
            except OSError as exc:
                raise CodecError(
                    f"cannot read database {path}: {exc}") from exc
            format = "binary" if magic == _BINARY_MAGIC else "json"
        if format == "binary":
            try:
                with open(path, "rb") as handle:
                    return cls._read_binary(handle)
            except OSError as exc:
                raise CodecError(
                    f"cannot read database {path}: {exc}") from exc
        if format != "json":
            raise CodecError(
                f"unknown database format {format!r} "
                f"(expected 'json' or 'binary')")
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            # ValueError covers JSONDecodeError and the UnicodeDecodeError
            # a binary file raises when force-read as JSON text.
            raise CodecError(f"cannot read database {path}: {exc}") from exc
        if not isinstance(payload, dict) or \
                payload.get("format") != _FORMAT:
            raise CodecError(f"{path} is not a repro database file")
        if payload.get("version") != _VERSION:
            raise CodecError(
                f"unsupported database version {payload.get('version')!r}")
        return cls(decode_dataset(payload["dataset"]))

    # -- binary container ---------------------------------------------------------

    def _write_binary(self, handle: IO[bytes]) -> None:
        """Stream the binary container: header, dataset, digest, indexes.

        The dataset section iterates the raw element set (no canonical
        sort — ``structural_key`` recursion stays off the persistence
        path). Index sections reference data by their position in the
        written stream and subobjects by their codec value-table refs,
        so persisting the indexes costs varints, not re-encoded values.
        """
        # An interned database never holds two structurally equal but
        # distinct objects, so identity dedup alone is complete there.
        encoder = Encoder(handle, hasher=hashlib.sha256(), header=False,
                          dedup_shapes=not self._intern)
        encoder.write_bytes(_BINARY_MAGIC)
        encoder.write_uvarint(_BINARY_VERSION)
        encoder.write_uvarint(binary_codec.VERSION)
        encoder.write_uvarint(_FLAG_INTERNED if self._intern else 0)
        # order maps id(datum) -> pre-packed position varint: index
        # sections reference each datum ~once per indexed path, so
        # packing the position once amortizes across all of them.
        order: dict[int, bytes] = {}
        for position, datum in enumerate(self._data):
            order[id(datum)] = binary_codec.pack_uvarint(position)
            encoder.write_datum(datum)
        encoder.write_end()
        # Digest of everything up to and including END pins the index
        # sections to this exact dataset encoding.
        encoder.write_string(encoder.hexdigest())
        self._write_attr_section(encoder, order)
        self._write_key_section(encoder, order)
        encoder.flush()

    @staticmethod
    def _write_data_refs(encoder: Encoder, data: Iterable[Data],
                         order: dict[int, bytes]) -> None:
        refs = [order[id(datum)] for datum in data]
        encoder.write_uvarint(len(refs))
        encoder.write_bytes(b"".join(refs))

    def _write_attr_section(self, encoder: Encoder,
                            order: dict[int, bytes]) -> None:
        entries = list(self._attr_index.entries())
        encoder.write_uvarint(len(entries))
        for steps, postings, exists in entries:
            encoder.write_uvarint(len(steps))
            for step in steps:
                encoder.write_string(step)
            self._write_data_refs(encoder, exists, order)
            encoder.write_uvarint(len(postings))
            for value, holders in postings.items():
                encoder.write_ref(value)
                self._write_data_refs(encoder, holders, order)

    def _write_key_section(self, encoder: Encoder,
                           order: dict[int, bytes]) -> None:
        encoder.write_uvarint(len(self._key_indexes))
        for key, index in self._key_indexes.items():
            encoder.write_uvarint(len(key))
            for attr in sorted(key):
                encoder.write_string(attr)
            encoder.write_uvarint(len(index.buckets))
            for sig, bucket in index.buckets.items():
                self._write_signature(encoder, sig)
                self._write_data_refs(encoder, bucket, order)
            self._write_data_refs(encoder, index.scan_list, order)
            self._write_data_refs(encoder, index.never_list, order)

    @staticmethod
    def _write_signature(encoder: Encoder, sig: Hashable) -> None:
        kind, payload = sig  # buckets never hold NEVER/UNINDEXABLE
        if kind == "whole":
            encoder.write_uvarint(_SIG_WHOLE)
            encoder.write_ref(payload)
        else:
            encoder.write_uvarint(_SIG_TUPLE)
            encoder.write_uvarint(len(payload))
            for label, attr in payload:
                encoder.write_string(label)
                encoder.write_ref(attr)

    @classmethod
    def _read_binary(cls, handle: IO[bytes]) -> "Database":
        decoder = Decoder(handle, hasher=hashlib.sha256(), header=False)
        magic = decoder.read_bytes(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise CodecError("not a repro binary database file")
        container_version = decoder.read_uvarint()
        if container_version != _BINARY_VERSION:
            raise CodecError(
                f"unsupported database version {container_version!r}")
        codec_version = decoder.read_uvarint()
        if codec_version != binary_codec.VERSION:
            raise CodecError(
                f"unsupported binary codec version {codec_version!r} "
                f"(this build reads version {binary_codec.VERSION})")
        interned = bool(decoder.read_uvarint() & _FLAG_INTERNED)
        decoder.intern = interned
        data_order = list(decoder.iter_data())
        if not decoder.ended:
            # EOF landed on a frame boundary before the END marker — a
            # truncated file must never load as a smaller database.
            raise CodecError(
                "truncated binary database: dataset section has no "
                "END frame")
        dataset_digest = decoder.hexdigest()

        database = cls.__new__(cls)
        database._intern = interned
        database._data = set(data_order)
        database._marker_index = {}
        database._key_indexes = {}
        database._attr_index = AttrIndex()
        database._snapshot_cache = None
        database._query_cache = {}
        for datum in database._data:
            database._index_markers(datum)

        # The index sections are an optimization, never a correctness
        # dependency: any parse problem or digest mismatch falls back
        # to rebuilding from the data (keeping the recorded paths/keys
        # when the section structure itself was readable).
        attr_entries: list | None = None
        key_structs: list | None = None
        stored_digest = None
        try:
            stored_digest = decoder.read_string()
            attr_entries = cls._read_attr_section(decoder, data_order)
            key_structs = cls._read_key_section(decoder, data_order)
        except CodecError:
            pass
        if (stored_digest == dataset_digest and attr_entries is not None
                and key_structs is not None):
            database._attr_index = AttrIndex.restore(attr_entries)
            database._key_indexes = {
                key: KeyIndex.restore(key, buckets, scan, never)
                for key, buckets, scan, never in key_structs}
        else:
            if attr_entries:
                database._attr_index = AttrIndex(
                    [steps for steps, _, _ in attr_entries], data_order)
            if key_structs:
                database._key_indexes = {
                    key: KeyIndex(database._data, key)
                    for key, _, _, _ in key_structs}
        return database

    @staticmethod
    def _read_data_refs(decoder: Decoder,
                        data_order: list[Data]) -> set[Data]:
        count = decoder.read_uvarint()
        refs = decoder.read_uvarint_seq(count)
        try:
            return set(map(data_order.__getitem__, refs))
        except IndexError:
            bad = next(ref for ref in refs if ref >= len(data_order))
            raise CodecError(
                f"invalid datum reference {bad} in index section") \
                from None

    @staticmethod
    def _read_data_ref_list(decoder: Decoder,
                            data_order: list[Data]) -> list[Data]:
        """Like :meth:`_read_data_refs` but preserves the written order
        (key-index buckets are lists, so no set needs building)."""
        count = decoder.read_uvarint()
        refs = decoder.read_uvarint_seq(count)
        try:
            return list(map(data_order.__getitem__, refs))
        except IndexError:
            bad = next(ref for ref in refs if ref >= len(data_order))
            raise CodecError(
                f"invalid datum reference {bad} in index section") \
                from None

    @classmethod
    def _read_attr_section(cls, decoder: Decoder,
                           data_order: list[Data]) -> list:
        entries = []
        for _ in range(decoder.read_uvarint()):
            steps = tuple(decoder.read_label()
                          for _ in range(decoder.read_uvarint()))
            exists = cls._read_data_refs(decoder, data_order)
            postings = {}
            for _ in range(decoder.read_uvarint()):
                value = decoder.node(decoder.read_uvarint())
                postings[value] = cls._read_data_refs(decoder, data_order)
            entries.append((steps, postings, exists))
        return entries

    @classmethod
    def _read_key_section(cls, decoder: Decoder,
                          data_order: list[Data]) -> list:
        structs = []
        for _ in range(decoder.read_uvarint()):
            key = frozenset(decoder.read_label()
                            for _ in range(decoder.read_uvarint()))
            buckets = {}
            for _ in range(decoder.read_uvarint()):
                sig = cls._read_signature(decoder)
                buckets[sig] = cls._read_data_ref_list(
                    decoder, data_order)
            scan = cls._read_data_ref_list(decoder, data_order)
            never = cls._read_data_ref_list(decoder, data_order)
            structs.append((key, buckets, scan, never))
        return structs

    @staticmethod
    def _read_signature(decoder: Decoder) -> Hashable:
        # Tuple signatures dominate (every fully-keyed datum gets one),
        # so they are dispatched first with bound locals.
        kind = decoder.read_uvarint()
        if kind == _SIG_TUPLE:
            read_label = decoder.read_label
            read_uvarint = decoder.read_uvarint
            node = decoder.node
            return ("tuple", tuple(
                (read_label(), node(read_uvarint()))
                for _ in range(read_uvarint())))
        if kind == _SIG_WHOLE:
            return ("whole", decoder.node(decoder.read_uvarint()))
        raise CodecError(f"unknown signature kind {kind!r}")


def _fsync_directory(path: Path) -> None:
    """Best-effort fsync of a directory entry (POSIX only).

    ``os.replace`` makes the rename atomic, but the *directory* write
    that records it can still sit in the page cache; without this a
    crash right after save can resurface the old file.
    """
    if os.name != "posix":
        return
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)
