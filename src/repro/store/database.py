"""A small persistent database of semistructured data.

The paper's §4 names "how to implement the semistructured data model"
as open work; this module is that implementation at library scale:

* a :class:`Database` holds one :class:`~repro.core.data.DataSet` plus a
  marker index and lazily built, *incrementally maintained* key indexes
  — ``insert``/``remove``/``merge_in`` patch every live
  :class:`~repro.store.index.KeyIndex` instead of invalidating it;
* content-addressed updates: ``insert``/``remove`` return nothing and
  mutate the database, but all returned data values stay immutable;
* durability through the tagged-JSON codec with atomic file replacement
  (write to a temp file, ``os.replace``), so a crash never leaves a
  half-written database behind;
* ``merge_in`` ingests another source as a net
  :class:`~repro.store.bulk.UnionDiff` against the maintained index
  (optionally through the parallel blocked pipeline), so an ingest
  touches only the data the ``∪K`` step actually changed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.compatibility import check_key
from repro.core.data import Data, DataSet
from repro.core.errors import CodecError
from repro.core.intern import intern_data
from repro.core.objects import Marker, SSObject, Tuple
from repro.json_codec.codec import decode_dataset, encode_dataset
from repro.store.attr_index import AttrIndex
from repro.store.bulk import blocked_union, union_diff
from repro.store.index import KeyIndex

__all__ = ["Database"]

#: Format marker written into every database file.
_FORMAT = "repro-database"
_VERSION = 1

#: Parsed textual queries cached per database (plans and compiled
#: predicates live on the cached condition objects).
_QUERY_CACHE_SIZE = 128


class Database:
    """An updatable, persistable collection of semistructured data.

    With ``intern_objects=True`` (the default) every stored datum is
    hash-consed on the way in (:mod:`repro.core.intern`): structurally
    equal objects share one canonical representative, so key-index
    signatures, compatibility checks and Definition 12 merges all hit
    the identity-keyed memo tables. Interning preserves equality, so
    lookups and results are unchanged — only faster. Pass
    ``intern_objects=False`` to store data exactly as given.
    """

    def __init__(self, data: Iterable[Data] = (), *,
                 intern_objects: bool = True,
                 index_paths: Iterable[str] = ()):
        self._intern = intern_objects
        self._data: set[Data] = set(
            self._canonical(datum) for datum in data)
        self._marker_index: dict[Marker, set[Data]] = {}
        self._key_indexes: dict[frozenset[str], KeyIndex] = {}
        self._attr_index = AttrIndex(index_paths)
        self._snapshot_cache: DataSet | None = None
        self._query_cache: dict[str, object] = {}
        for datum in self._data:
            self._index_markers(datum)
            self._attr_index.add(datum)

    def _canonical(self, datum: Data) -> Data:
        return intern_data(datum) if self._intern else datum

    # -- basic collection protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, datum: object) -> bool:
        return datum in self._data

    def __iter__(self) -> Iterator[Data]:
        return iter(self.snapshot())

    def snapshot(self) -> DataSet:
        """An immutable view of the current contents.

        Snapshots are cached between mutations, so read-heavy
        workloads (the planned query path) pay the O(n) freeze once.
        """
        if self._snapshot_cache is None:
            self._snapshot_cache = DataSet(self._data)
        return self._snapshot_cache

    # -- updates ---------------------------------------------------------------

    def insert(self, datum: Data) -> bool:
        """Insert a datum; returns ``False`` when already present."""
        datum = self._canonical(datum)
        if datum in self._data:
            return False
        self._data.add(datum)
        self._snapshot_cache = None
        self._index_markers(datum)
        self._attr_index.add(datum)
        for index in self._key_indexes.values():
            index.add(datum)
        return True

    def insert_all(self, data: Iterable[Data]) -> int:
        """Insert many; returns how many were new."""
        return sum(1 for datum in data if self.insert(datum))

    def remove(self, datum: Data) -> bool:
        """Remove a datum; returns ``False`` when absent."""
        if datum not in self._data:
            return False
        self._data.discard(datum)
        self._snapshot_cache = None
        self._unindex_markers(datum)
        self._attr_index.remove(datum)
        for index in self._key_indexes.values():
            index.remove(datum)
        return True

    def _index_markers(self, datum: Data) -> None:
        for marker in datum.markers:
            self._marker_index.setdefault(marker, set()).add(datum)

    def _unindex_markers(self, datum: Data) -> None:
        for marker in datum.markers:
            entries = self._marker_index.get(marker)
            if entries is not None:
                entries.discard(datum)
                if not entries:
                    del self._marker_index[marker]

    def update(self, marker: Marker | str,
               transform: "Callable[[Data], Data]") -> int:
        """Rewrite every datum carrying ``marker`` through ``transform``.

        Returns how many data were actually changed. ``transform``
        receives each datum and returns its replacement (data are
        immutable, so updates are replacements).
        """
        targets = list(self.by_marker(marker))
        changed = 0
        for datum in targets:
            replacement = transform(datum)
            if not isinstance(replacement, Data):
                raise CodecError(
                    "update transform must return a Data value")
            if replacement != datum:
                self.remove(datum)
                self.insert(replacement)
                changed += 1
        return changed

    def set_attribute(self, marker: Marker | str, label: str,
                      value: SSObject) -> int:
        """Set one tuple attribute on every datum carrying ``marker``.

        Binding to ``⊥`` removes the attribute. Non-tuple objects are
        left untouched. Returns the number of data changed.
        """

        def rewrite(datum: Data) -> Data:
            if isinstance(datum.object, Tuple):
                return Data(datum.marker,
                            datum.object.with_field(label, value))
            return datum

        return self.update(marker, rewrite)

    # -- lookups ----------------------------------------------------------------

    def by_marker(self, marker: Marker | str) -> DataSet:
        """All data whose marker part mentions ``marker``."""
        if isinstance(marker, str):
            marker = Marker(marker)
        return DataSet(self._marker_index.get(marker, set()))

    def _key_index(self, key: frozenset[str]) -> KeyIndex:
        index = self._key_indexes.get(key)
        if index is None:
            index = KeyIndex(self._data, key)
            self._key_indexes[key] = index
        return index

    def compatible_with(self, datum: Data,
                        key: Iterable[str]) -> DataSet:
        """All stored data compatible with ``datum`` wrt ``key``
        (index-accelerated)."""
        from repro.core.compatibility import compatible_data

        checked = check_key(key)
        index = self._key_index(checked)
        return DataSet(
            candidate for candidate in index.candidates(datum)
            if compatible_data(datum, candidate, checked))

    # -- attribute indexes -------------------------------------------------------

    @property
    def indexed_paths(self) -> frozenset[tuple[str, ...]]:
        """The attribute paths the query planner can probe."""
        return self._attr_index.paths

    def create_index(self, path: str) -> None:
        """Start indexing an attribute path (backfilled immediately).

        Queries whose conditions constrain the path with ``Eq``,
        ``Exists`` or ``Contains`` then probe the inverted index
        instead of scanning; ``insert``/``remove``/``update``/
        ``merge_in`` keep it current incrementally.
        """
        self._attr_index.add_path(path, self._data)

    def _parsed(self, text: str):
        spec = self._query_cache.get(text)
        if spec is None:
            from repro.query.parser import parse_query_spec

            spec = parse_query_spec(text)
            if len(self._query_cache) >= _QUERY_CACHE_SIZE:
                self._query_cache.pop(next(iter(self._query_cache)))
            self._query_cache[text] = spec
        return spec

    def query(self, text: str, *, naive: bool = False) -> DataSet:
        """Run a textual query (``select ... where ...``) on the
        current contents.

        Parsed queries are cached by text, and execution routes through
        the planner with this database's attribute index attached.
        ``naive=True`` forces the definitional full scan (the oracle).
        """
        query = self._parsed(text).query(self.snapshot(),
                                         index=self._attr_index)
        return query.run(naive=naive)

    def explain(self, text: str):
        """The :class:`~repro.query.planner.Plan` for a textual query."""
        return self._parsed(text).query(self.snapshot(),
                                        index=self._attr_index).explain()

    # -- merging ------------------------------------------------------------------

    def merge_in(self, source: DataSet, key: Iterable[str], *,
                 parallel: int = 0) -> int:
        """Union a new source into the database (Definition 12).
        Returns the resulting size.

        The step is applied as a net diff: only the data the ``∪K``
        actually replaced or introduced touch the marker index and the
        maintained key indexes. ``parallel > 0`` routes the union
        through the blocked pipeline's worker pool
        (:func:`repro.store.bulk.blocked_union`); results are identical.
        """
        checked = check_key(key)
        if self._intern:
            source = DataSet(intern_data(datum) for datum in source)
        elif not isinstance(source, DataSet):
            source = DataSet(source)
        if parallel:
            merged = set(blocked_union([self.snapshot(), source], checked,
                                       parallel=parallel))
            removed = tuple(d for d in self._data if d not in merged)
            added = tuple(d for d in merged if d not in self._data)
        else:
            diff = union_diff(self._data, self._key_index(checked),
                              source, checked)
            removed, added = diff.removed, diff.added
        for datum in removed:
            self._data.discard(datum)
            self._unindex_markers(datum)
            self._attr_index.remove(datum)
            for index in self._key_indexes.values():
                index.remove(datum)
        for datum in added:
            datum = self._canonical(datum)
            self._data.add(datum)
            self._index_markers(datum)
            self._attr_index.add(datum)
            for index in self._key_indexes.values():
                index.add(datum)
        if removed or added:
            self._snapshot_cache = None
        return len(self._data)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the database to ``path`` atomically."""
        payload = {
            "format": _FORMAT,
            "version": _VERSION,
            "dataset": encode_dataset(self.snapshot()),
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, target)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    @classmethod
    def load(cls, path: str | Path) -> "Database":
        """Read a database written by :meth:`save`."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CodecError(f"cannot read database {path}: {exc}") from exc
        if not isinstance(payload, dict) or \
                payload.get("format") != _FORMAT:
            raise CodecError(f"{path} is not a repro database file")
        if payload.get("version") != _VERSION:
            raise CodecError(
                f"unsupported database version {payload.get('version')!r}")
        return cls(decode_dataset(payload["dataset"]))
