"""A small persistent database of semistructured data.

The paper's §4 names "how to implement the semistructured data model"
as open work; this module is that implementation at library scale:

* a :class:`Database` holds one :class:`~repro.core.data.DataSet` plus a
  marker index and lazily built key indexes, all published together as
  one immutable **state record** (:class:`_DBState`) tagged with a
  monotonically increasing *generation*;
* **MVCC-style concurrency**: every mutation
  (``insert``/``remove``/``update``/``set_attribute``/``merge_in``)
  serializes behind a writer lock, patches the indexes copy-on-write
  and publishes the next generation by swapping one attribute — readers
  never lock, never block, and never observe a torn write, because a
  single read of ``self._state`` pins a complete consistent view
  (:meth:`Database.view` hands that pin out explicitly for multi-query
  reads at one generation);
* an **epoch-invalidated query-result cache**
  (:class:`~repro.store.cache.QueryResultCache`): textual query results
  are cached per generation, and a write whose delta is disjoint from a
  cached query's footprint paths re-tags the entry to the new
  generation instead of evicting it, so read-mostly workloads keep
  their cache across unrelated writes;
* content-addressed updates: ``insert``/``remove`` return nothing and
  mutate the database, but all returned data values stay immutable;
* durability through atomic file replacement — write to a temp file,
  ``flush`` + ``fsync`` it (and the containing directory on POSIX),
  then ``os.replace`` — so a crash never leaves a half-written or
  silently empty database behind. Two on-disk formats:
  ``format="json"`` (the tagged-JSON codec, human-greppable) and
  ``format="binary"`` (:mod:`repro.binary_codec` — deduplicated value
  table, streamed data, and the key/attribute index signatures
  persisted alongside the data so a cold :meth:`load` starts
  index-warm: the saved postings are validated against a content
  digest of the dataset section and only rebuilt on mismatch);
* ``merge_in`` ingests another source as a net
  :class:`~repro.store.bulk.UnionDiff` against the maintained index
  (optionally through the parallel blocked pipeline), so an ingest
  touches only the data the ``∪K`` step actually changed;
* **incremental durability** through a write-ahead log
  (:mod:`repro.store.wal`): :meth:`Database.open` with
  ``durable=True`` appends every committed batch's net diff to an
  fsynced log *before* publishing the new state, replays
  log-on-top-of-snapshot when reopening (torn tails truncated, never
  fatal), compacts snapshot + log past a size threshold on a
  background thread, and recovers to any logged generation
  (:meth:`Database.recover_to`);
* **group commit** for concurrent writers: each committer encodes its
  frame body *outside* the writer lock, registers a
  :class:`~repro.store.wal.CommitTicket` and blocks on the
  :class:`~repro.store.wal.GroupCommitter` barrier; one elected
  leader writes and fsyncs the whole batch with a single syscall pair
  and publishes the batch's final state, so the dominant fsync cost
  amortizes across every writer in the batch
  (``Database.open(..., group_commit=False)`` restores the serialized
  per-commit fsync, ``commit_interval`` coalesces even
  non-overlapping writers, and :meth:`Database.apply_many` lets bulk
  ingest ride one frame).

The memory-model assumption is CPython's: publishing a fully built
state record by assigning one attribute is atomic under the GIL, and
every reader works off the single record it read first. DESIGN.md
("Concurrency and caching") spells out the protocol.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import warnings
from pathlib import Path
from typing import IO, Callable, Hashable, Iterable, Iterator

from repro import binary_codec
from repro.binary_codec import Decoder, Encoder
from repro.core.compatibility import check_key
from repro.core.data import Data, DataSet
from repro.core.errors import CodecError
from repro.core.intern import intern_data
from repro.core.objects import Marker, SSObject, Tuple
from repro.json_codec.codec import decode_dataset, encode_dataset
from repro.store.attr_index import AttrIndex
from repro.store.bulk import blocked_union, union_diff
from repro.store.cache import LRUCache, QueryResultCache
from repro.store.fsutil import fsync_directory
from repro.store.index import KeyIndex
from repro.store.wal import (
    CommitTicket,
    GroupCommitter,
    WalFrame,
    WriteAheadLog,
    _maybe_crash,
    encode_frame_body,
    frame_from_body,
    scan_wal,
    wal_path,
)

__all__ = ["Database", "DatabaseView"]

#: Format marker written into every JSON database file.
_FORMAT = "repro-database"
_VERSION = 1

#: Magic prefix of binary database files (followed by the container
#: version, the embedded codec version, a flags varint and — from
#: container version 2 — the snapshot's generation varint).
_BINARY_MAGIC = b"RPDB"
_BINARY_VERSION = 2

#: Container versions this build can read (1 has no generation field).
_BINARY_READABLE = (1, 2)

#: Container flag: the store interns its objects.
_FLAG_INTERNED = 1

#: Signature kinds in the persisted key-index section.
_SIG_WHOLE = 0
_SIG_TUPLE = 1

#: Parsed textual queries cached per database (plans and compiled
#: predicates live on the cached condition objects).
_QUERY_CACHE_SIZE = 128

#: Default capacity of the per-generation query-result cache.
_RESULT_CACHE_SIZE = 256

#: Default WAL size (bytes) past which a durable database compacts:
#: the snapshot is rewritten at the current generation and the log is
#: truncated to the frames committed after it.
_COMPACT_BYTES = 4 << 20


class _DBState:
    """One published generation: data plus every derived index.

    Instances are immutable once published (the only post-publish write
    is the benign lazy :meth:`dataset` memo); a single read of
    ``Database._state`` therefore pins a complete, mutually consistent
    view of the store.
    """

    __slots__ = ("generation", "data", "marker_index", "key_indexes",
                 "attr_index", "_dataset", "_columns")

    def __init__(self, generation: int, data: frozenset[Data],
                 marker_index: dict[Marker, set[Data]],
                 key_indexes: dict[frozenset[str], KeyIndex],
                 attr_index: AttrIndex,
                 dataset: DataSet | None = None,
                 columns=None):
        self.generation = generation
        self.data = data
        self.marker_index = marker_index
        self.key_indexes = key_indexes
        self.attr_index = attr_index
        self._dataset = dataset
        self._columns = columns

    def dataset(self) -> DataSet:
        """The frozen :class:`DataSet`, built once per generation.

        The memo assignment races benignly: two readers may both build
        structurally equal sets, one wins, both are correct.
        """
        cached = self._dataset
        if cached is None:
            cached = DataSet(self.data)
            self._dataset = cached
        return cached

    def columns(self):
        """The generation's columnar shredding, built on first use.

        Like :meth:`dataset`, the memo races benignly. Generations
        created by ``_apply`` inherit a copy-on-write ``patched()``
        store instead of rebuilding, so once any generation has paid
        the shred, every successor updates incrementally.
        """
        cached = self._columns
        if cached is None:
            from repro.store.columnar import ColumnStore

            cached = ColumnStore.build(self.dataset())
            self._columns = cached
        return cached

    def with_key_indexes(self, key_indexes) -> "_DBState":
        """Same generation, one more lazily built key index."""
        return _DBState(self.generation, self.data, self.marker_index,
                        key_indexes, self.attr_index, self._dataset,
                        self._columns)

    def with_attr_index(self, attr_index: AttrIndex) -> "_DBState":
        """Same generation, one more indexed attribute path."""
        return _DBState(self.generation, self.data, self.marker_index,
                        self.key_indexes, attr_index, self._dataset,
                        self._columns)


def _build_marker_index(data: Iterable[Data]) -> dict[Marker, set[Data]]:
    index: dict[Marker, set[Data]] = {}
    for datum in data:
        for marker in datum.markers:
            index.setdefault(marker, set()).add(datum)
    return index


def _patched_markers(marker_index: dict[Marker, set[Data]],
                     removed: Iterable[Data],
                     added: Iterable[Data]) -> dict[Marker, set[Data]]:
    """Copy-on-write marker-index patch: the outer dict is shallow
    copied, per-marker sets are copied only when the delta touches
    them."""
    index = dict(marker_index)
    copied: set[Marker] = set()
    for datum in removed:
        for marker in datum.markers:
            entries = index.get(marker)
            if entries is None:
                continue
            if marker not in copied:
                entries = set(entries)
                index[marker] = entries
                copied.add(marker)
            entries.discard(datum)
            if not entries:
                del index[marker]
    for datum in added:
        for marker in datum.markers:
            entries = index.get(marker)
            if entries is None or marker not in copied:
                entries = set(entries) if entries is not None else set()
                index[marker] = entries
                copied.add(marker)
            entries.add(datum)
    return index


class Database:
    """An updatable, persistable collection of semistructured data.

    With ``intern_objects=True`` (the default) every stored datum is
    hash-consed on the way in (:mod:`repro.core.intern`): structurally
    equal objects share one canonical representative, so key-index
    signatures, compatibility checks and Definition 12 merges all hit
    the identity-keyed memo tables. Interning preserves equality, so
    lookups and results are unchanged — only faster. Pass
    ``intern_objects=False`` to store data exactly as given.

    The store is safe for concurrent use: reads (queries, lookups,
    snapshots, views) are lock-free against the last published
    generation, writes serialize behind an internal writer lock.
    ``result_cache_size`` bounds the epoch-invalidated query-result
    cache (``0`` disables it).
    """

    def __init__(self, data: Iterable[Data] = (), *,
                 intern_objects: bool = True,
                 index_paths: Iterable[str] = (),
                 result_cache_size: int = _RESULT_CACHE_SIZE):
        self._intern = intern_objects
        initial = set(self._canonical(datum) for datum in data)
        state = _DBState(
            generation=0,
            data=frozenset(initial),
            marker_index=_build_marker_index(initial),
            key_indexes={},
            attr_index=AttrIndex(index_paths, initial),
        )
        self._init_runtime(state, result_cache_size)

    def _init_runtime(self, state: _DBState,
                      result_cache_size: int = _RESULT_CACHE_SIZE) -> None:
        """Attach the mutable runtime (locks, caches) around a state."""
        self._lock = threading.RLock()
        self._parsed_cache = LRUCache(_QUERY_CACHE_SIZE)
        self._results = QueryResultCache(result_cache_size)
        self._executor_lock = threading.Lock()
        self._executor_slots: dict[tuple[int, str], object] = {}
        self._executor_generation: int | None = None
        # Durability runtime: populated by Database.open(durable=True);
        # a plain in-memory database never touches the log.
        self._wal: WriteAheadLog | None = None
        self._path: Path | None = None
        self._snapshot_format = "binary"
        self._compact_bytes = _COMPACT_BYTES
        self._auto_compact = False
        self._compact_lock = threading.Lock()
        self._compact_spawn = threading.Lock()
        self._compact_thread: threading.Thread | None = None
        # Group-commit runtime. ``_publish_lock`` keeps the pair
        # "(log contents, published state)" mutually consistent: every
        # append+publish — a leader's batch, a serialized commit, a
        # compaction's pin and swap — happens inside it. Lock order is
        # strictly ``_lock → _publish_lock``; nothing acquires the
        # writer lock while holding the publish lock.
        self._publish_lock = threading.Lock()
        self._committer: GroupCommitter | None = None
        self._state = state
        # The head of the commit chain: the latest *built* state,
        # published or not. Writers extend the chain off ``_head``
        # under the writer lock; the batch leader publishes to
        # ``_state`` once the frames are durable. With no pending
        # tickets the two are the same object.
        self._head = state

    def _canonical(self, datum: Data) -> Data:
        return intern_data(datum) if self._intern else datum

    # -- basic collection protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._state.data)

    def __contains__(self, datum: object) -> bool:
        return datum in self._state.data

    def __iter__(self) -> Iterator[Data]:
        return iter(self.snapshot())

    @property
    def generation(self) -> int:
        """The published generation; bumped by every effective write."""
        return self._state.generation

    def snapshot(self) -> DataSet:
        """An immutable view of the current contents.

        One :class:`DataSet` is built per generation, so read-heavy
        workloads pay the O(n) freeze once per write batch.
        """
        return self._state.dataset()

    def view(self) -> "DatabaseView":
        """Pin the current generation for a consistent multi-read.

        The view serves queries, lookups and snapshots against exactly
        the state published at creation time, unaffected by concurrent
        writers — the cheap MVCC read transaction.
        """
        return DatabaseView(self, self._state)

    # -- internal state for compatibility helpers ----------------------------

    @property
    def _data(self) -> frozenset[Data]:
        return self._state.data

    @property
    def _marker_index(self) -> dict[Marker, set[Data]]:
        return self._state.marker_index

    @property
    def _key_indexes(self) -> dict[frozenset[str], KeyIndex]:
        return self._state.key_indexes

    @property
    def _attr_index(self) -> AttrIndex:
        return self._state.attr_index

    # -- updates ---------------------------------------------------------------

    def _precompute(self, removed: Iterable[Data],
                    added: Iterable[Data]):
        """Optimistically compute the net delta and encode the frame
        body *outside* the writer lock.

        The body (one codec record per datum) is the expensive part of
        a commit; the delta is derived against the head state as of
        this instant and encoded speculatively, with that head pinned
        in the result. Under the lock, :meth:`_apply_locked` reuses
        delta and body wholesale when the head is still the same
        object — the common, uncontended case — and falls back to
        recomputing both when a concurrent writer moved the chain.
        """
        head = self._head
        added_set = set(added)
        removed_set = set(removed)
        delta_removed = tuple(datum for datum in removed_set
                              if datum in head.data
                              and datum not in added_set)
        delta_added = tuple(datum for datum in added_set
                            if datum not in head.data)
        if not delta_removed and not delta_added:
            return None
        return (head, delta_removed, delta_added,
                encode_frame_body(delta_removed, delta_added))

    def _apply_locked(self, removed: Iterable[Data],
                      added: Iterable[Data], pre=None,
                      ) -> tuple[tuple[Data, ...], tuple[Data, ...],
                                 CommitTicket | None]:
        """Extend the commit chain by one write batch (writer lock
        held); returns ``(net removed, net added, ticket)``.

        The next state is assembled copy-on-write off the chain head.
        How it becomes visible depends on the durability mode:

        * transient (no log): cache epoch committed and the state
          published inline — same as ever;
        * serialized durable (``group_commit=False``): append + fsync
          + publish under the publish lock, one fsync per commit;
        * group commit: the frame is encoded (reusing ``pre`` from
          :meth:`_precompute` when the delta still matches), a
          :class:`CommitTicket` is registered, and the *caller* must
          block on the committer barrier via :meth:`_finish` — after
          releasing the writer lock, so a waiting follower never
          stalls other writers' chain building.
        """
        state = self._head
        if pre is not None and pre[0] is state:
            # Uncontended fast path: the head the speculative encode
            # ran against is still the head, so its delta (and frame
            # body) are exact — nothing to recompute under the lock.
            _, delta_removed, delta_added, body = pre
        else:
            body = None
            added_set = set(added)
            removed_set = set(removed)
            delta_removed = tuple(datum for datum in removed_set
                                  if datum in state.data
                                  and datum not in added_set)
            delta_added = tuple(datum for datum in added_set
                                if datum not in state.data)
        if not delta_removed and not delta_added:
            return (), (), None
        new_data = frozenset(
            (state.data - frozenset(delta_removed)) | frozenset(delta_added))
        attr_index, touched = state.attr_index.patched(
            delta_removed, delta_added)
        # The columnar shredding patches copy-on-write like every other
        # index — but only if some generation already built it; an
        # unshreded store stays lazy (columns=None) across writes.
        prev_columns = state._columns
        next_state = _DBState(
            generation=state.generation + 1,
            data=new_data,
            marker_index=_patched_markers(
                state.marker_index, delta_removed, delta_added),
            key_indexes={
                key: index.patched(delta_removed, delta_added)
                for key, index in state.key_indexes.items()},
            attr_index=attr_index,
            columns=(None if prev_columns is None
                     else prev_columns.patched(delta_removed,
                                               delta_added)),
        )
        cache_step = (state.generation, next_state.generation,
                      delta_removed + delta_added, touched,
                      attr_index.paths)
        log = self._wal
        if log is None:
            self._results.commit(*cache_step)
            self._head = next_state
            self._state = next_state
            return delta_removed, delta_added, None
        if self._committer is None:
            # Serialized baseline: the frame must be durable before
            # any reader can pin the generation it creates. An append
            # failure leaves the old state published, the head chain
            # unmoved and the log truncated to its last good frame.
            with self._publish_lock:
                log.append(next_state.generation, delta_removed,
                           delta_added)
                self._results.commit(*cache_step)
                self._head = next_state
                self._state = next_state
            if self._auto_compact and log.size >= self._compact_bytes:
                self._spawn_compaction()
            return delta_removed, delta_added, None
        # Group commit: stamp the generation onto the speculatively
        # encoded body (fast path above); a contended commit pays the
        # encode here, under the lock.
        if body is None:
            body = encode_frame_body(delta_removed, delta_added)
        ticket = CommitTicket(
            next_state.generation,
            frame_from_body(next_state.generation, body),
            state=next_state, cache_step=cache_step)
        self._head = next_state
        self._committer.register(ticket)
        return delta_removed, delta_added, ticket

    def _finish(self, outcome) -> tuple[tuple[Data, ...],
                                        tuple[Data, ...]]:
        """Block until an :meth:`_apply_locked` outcome is durable.

        Must be called *without* the writer lock: a group-commit
        follower parks here until its batch's fsync retires (or
        re-raises the batch's append error), and holding the writer
        lock across that wait would both serialize unrelated writers
        and deadlock against the leader's abort path.
        """
        delta_removed, delta_added, ticket = outcome
        if ticket is not None:
            self._committer.commit(ticket)
        return delta_removed, delta_added

    def _apply(self, removed: Iterable[Data], added: Iterable[Data],
               ) -> tuple[tuple[Data, ...], tuple[Data, ...]]:
        """Apply one write batch; returns the net ``(removed, added)``.

        The narrowed write path: the frame body is encoded outside the
        writer lock (:meth:`_precompute`), only the chain extension —
        diff renormalization against the head, copy-on-write index
        patching, ticket registration — serializes under the lock
        (:meth:`_apply_locked`), and the durability wait happens after
        the lock is released (:meth:`_finish`). Whatever the mode, by
        the time this returns the write is durable to the configured
        degree and published, and no reader can ever observe a
        generation whose frame is not on disk.
        """
        pre = None
        if self._committer is not None:
            pre = self._precompute(removed, added)
        with self._lock:
            outcome = self._apply_locked(removed, added, pre)
        return self._finish(outcome)

    def _on_batch_durable(self, batch: "list[CommitTicket]") -> None:
        """Publish one durable batch (leader-only, inside the publish
        lock, after the batch's single fsync retired).

        Cache epochs advance per ticket in generation order, then the
        batch's final state is published with one assignment — a
        reader either sees the pre-batch generation or the post-batch
        one with every cache entry already committed past it.
        """
        for ticket in batch:
            try:
                self._results.commit(*ticket.cache_step)
            except BaseException:  # pragma: no cover - defensive
                # The cache is an optimization; never let it block the
                # publish of frames that are already durable.
                self._results.clear()
        self._state = batch[-1].state
        log = self._wal
        if (log is not None and self._auto_compact
                and log.size >= self._compact_bytes):
            self._spawn_compaction()

    def _on_batch_abort(self, batch: "list[CommitTicket]",
                        exc: BaseException) -> None:
        """Reset the commit chain after a failed batch append.

        The leader calls this *outside* the publish lock, so taking
        the writer lock here is safe. Every state built on top of the
        failed batch is abandoned: the head snaps back to the last
        published state, and tickets still queued behind the batch are
        failed too — their generations can no longer reach the log.
        """
        with self._lock:
            self._head = self._state
            doomed = self._committer.drain_pending()
        self._committer.fail(doomed, exc)

    def insert(self, datum: Data) -> bool:
        """Insert a datum; returns ``False`` when already present."""
        datum = self._canonical(datum)
        _, added = self._apply((), (datum,))
        return bool(added)

    def insert_all(self, data: Iterable[Data]) -> int:
        """Insert many; returns how many were new.

        One batch, one generation: the whole insert publishes a single
        new state and pays cache invalidation once, not per datum.
        """
        batch = [self._canonical(datum) for datum in data]
        _, added = self._apply((), batch)
        return len(added)

    def apply_many(self, removed: Iterable[Data] = (),
                   added: Iterable[Data] = (),
                   ) -> tuple[int, int]:
        """Apply one bulk batch — removals and insertions together —
        as a single commit; returns the net ``(removed, added)``
        counts.

        The whole batch is one generation bump, one WAL frame and one
        fsync, so bulk ingest does not pay the commit protocol per
        datum. Data already absent (for removals) or present (for
        insertions) fall out of the net diff; a batch whose net diff
        is empty publishes nothing.
        """
        batch = tuple(self._canonical(datum) for datum in added)
        delta_removed, delta_added = self._apply(tuple(removed), batch)
        return len(delta_removed), len(delta_added)

    def remove(self, datum: Data) -> bool:
        """Remove a datum; returns ``False`` when absent."""
        removed, _ = self._apply((datum,), ())
        return bool(removed)

    def update(self, marker: Marker | str,
               transform: "Callable[[Data], Data]") -> int:
        """Rewrite every datum carrying ``marker`` through ``transform``.

        Returns how many data were actually changed. ``transform``
        receives each datum and returns its replacement (data are
        immutable, so updates are replacements). The whole rewrite is
        one atomic batch: readers observe either every replacement or
        none.
        """
        if isinstance(marker, str):
            marker = Marker(marker)
        with self._lock:
            # Read-compute-write against the chain head, atomically
            # with the chain extension: pending (registered, not yet
            # published) commits are visible to the transform.
            head = self._head
            targets = list(head.marker_index.get(marker, ()))
            removals: list[Data] = []
            additions: list[Data] = []
            changed = 0
            for datum in targets:
                replacement = transform(datum)
                if not isinstance(replacement, Data):
                    raise CodecError(
                        "update transform must return a Data value")
                if replacement != datum:
                    removals.append(datum)
                    additions.append(self._canonical(replacement))
                    changed += 1
            outcome = self._apply_locked(removals, additions)
        self._finish(outcome)
        return changed

    def set_attribute(self, marker: Marker | str, label: str,
                      value: SSObject) -> int:
        """Set one tuple attribute on every datum carrying ``marker``.

        Binding to ``⊥`` removes the attribute. Non-tuple objects are
        left untouched. Returns the number of data changed.
        """

        def rewrite(datum: Data) -> Data:
            if isinstance(datum.object, Tuple):
                return Data(datum.marker,
                            datum.object.with_field(label, value))
            return datum

        return self.update(marker, rewrite)

    # -- lookups ----------------------------------------------------------------

    def by_marker(self, marker: Marker | str) -> DataSet:
        """All data whose marker part mentions ``marker``."""
        if isinstance(marker, str):
            marker = Marker(marker)
        return DataSet(self._state.marker_index.get(marker, set()))

    def _key_index(self, key: frozenset[str]) -> KeyIndex:
        state = self._state
        index = state.key_indexes.get(key)
        if index is not None:
            return index
        with self._lock:
            # Re-check: another thread may have built it meanwhile.
            state = self._state
            index = state.key_indexes.get(key)
            if index is None:
                index = KeyIndex(state.data, key)
                key_indexes = dict(state.key_indexes)
                key_indexes[key] = index
                # Same generation: adding an index changes no result.
                replacement = state.with_key_indexes(key_indexes)
                if self._head is state:
                    self._head = replacement
                with self._publish_lock:
                    # Identity-checked store-back: a group-commit
                    # leader may have published a newer generation
                    # while the index was building — never regress
                    # the published state to cache an index on it.
                    if self._state is state:
                        self._state = replacement
            return index

    def _head_key_index(self, key: frozenset[str]) -> KeyIndex:
        """The key index for the *chain head* (writer lock held).

        Writers that diff against the head (``merge_in``) need an
        index consistent with pending commits, not just the published
        state; head indexes are patched forward per commit, so once
        built here the index stays warm along the whole chain.
        """
        head = self._head
        index = head.key_indexes.get(key)
        if index is not None:
            return index
        index = KeyIndex(head.data, key)
        key_indexes = dict(head.key_indexes)
        key_indexes[key] = index
        replacement = head.with_key_indexes(key_indexes)
        self._head = replacement
        with self._publish_lock:
            if self._state is head:
                self._state = replacement
        return index

    def compatible_with(self, datum: Data,
                        key: Iterable[str]) -> DataSet:
        """All stored data compatible with ``datum`` wrt ``key``
        (index-accelerated)."""
        from repro.core.compatibility import compatible_data

        checked = check_key(key)
        index = self._key_index(checked)
        return DataSet(
            candidate for candidate in index.candidates(datum)
            if compatible_data(datum, candidate, checked))

    # -- attribute indexes -------------------------------------------------------

    @property
    def indexed_paths(self) -> frozenset[tuple[str, ...]]:
        """The attribute paths the query planner can probe."""
        return self._state.attr_index.paths

    def create_index(self, path: str) -> None:
        """Start indexing an attribute path (backfilled immediately).

        Queries whose conditions constrain the path with ``Eq``,
        ``Exists`` or ``Contains`` then probe the inverted index
        instead of scanning; ``insert``/``remove``/``update``/
        ``merge_in`` keep it current incrementally.
        """
        with self._lock:
            # Index the chain head so the path stays maintained across
            # pending (registered, not yet published) commits too.
            state = self._head
            attr_index = state.attr_index.with_path(path, state.data)
            if attr_index is not state.attr_index:
                # Same generation: an extra index changes plans, never
                # results, so cached entries stay valid.
                replacement = state.with_attr_index(attr_index)
                self._head = replacement
                with self._publish_lock:
                    if self._state is state:
                        self._state = replacement

    # -- queries -----------------------------------------------------------------

    def _parsed(self, text: str):
        def parse():
            from repro.query.parser import parse_query_spec

            return parse_query_spec(text)

        return self._parsed_cache.get_or_add(text, parse)

    def _cache_profile(self, spec) -> tuple[frozenset, bool]:
        """``(footprint, safe)`` of a parsed query for the result cache.

        A ``select`` without a ``where`` matches everything — every
        write changes it, so it is never re-taggable. Aggregate specs
        additionally fold their aggregate and group paths into the
        footprint: the condition paths alone already gate which rows a
        delta can add or drop, but the wider footprint keeps the entry
        honest if the profile rules are ever loosened.
        """
        if spec.condition is None:
            return frozenset(), False
        from repro.query.compile import invalidation_profile

        paths, safe = invalidation_profile(spec.condition)
        if spec.aggregates is not None:
            from repro.query.paths import parse_path

            widened = set(paths)
            for agg in spec.aggregates:
                if agg.path is not None:
                    widened.add(agg.steps)
            if spec.group is not None:
                widened.add(parse_path(spec.group))
            paths = frozenset(widened)
        return paths, safe

    def _query_at(self, state: _DBState, text: str, *,
                  naive: bool = False, parallel: int = 0,
                  parallel_mode: str = "process") -> DataSet:
        """Execute a textual query against one pinned state."""
        spec = self._parsed(text)
        if spec.is_aggregate:
            return self._aggregate_at(state, text, spec, naive=naive,
                                      parallel=parallel,
                                      parallel_mode=parallel_mode)
        if naive:
            # The definitional oracle: no cache, no planner, no pool.
            return spec.query(state.dataset(),
                              index=state.attr_index).run(naive=True)
        cached = self._results.lookup(text, state.generation)
        if cached is not None:
            return cached
        if parallel:
            from repro.query.ast import project_data

            executor = self._executor(state, parallel, parallel_mode)
            selected = executor.select(spec.condition,
                                       spec.order_steps(), spec.limit)
            result = DataSet(project_data(selected, spec.projection))
        else:
            # ``columns`` stays a bound method: the shredding is only
            # built (lazily, once per lineage) if the planner actually
            # picks the columnar strategy for this condition.
            result = spec.query(state.dataset(),
                                index=state.attr_index,
                                columns=state.columns).run()
        paths, safe = self._cache_profile(spec)
        self._results.store(text, state.generation, result, paths, safe)
        return result

    def _aggregate_at(self, state: _DBState, text: str, spec, *,
                      naive: bool = False, parallel: int = 0,
                      parallel_mode: str = "process") -> dict:
        """Execute a textual aggregate query against one pinned state.

        Routes like :meth:`_query_at`: result-cached per generation,
        ``parallel=N`` runs the partial-aggregation pushdown over the
        shard pool, ``naive=True`` is the uncached per-row oracle.
        """
        if naive:
            return spec.run_aggregate(state.dataset(),
                                      index=state.attr_index, naive=True)
        cached = self._results.lookup(text, state.generation)
        if cached is not None:
            return cached
        if parallel:
            executor = self._executor(state, parallel, parallel_mode)
            result = executor.aggregate(spec.condition, spec.aggregates,
                                        spec.group)
        else:
            result = spec.run_aggregate(state.dataset(),
                                        index=state.attr_index,
                                        columns=state.columns)
        paths, safe = self._cache_profile(spec)
        self._results.store(text, state.generation, result, paths, safe)
        return result

    def query(self, text: str, *, naive: bool = False,
              parallel: int = 0,
              parallel_mode: str = "process") -> DataSet:
        """Run a textual query (``select ... where ...``) on the
        current contents.

        Parsed queries are cached by text (a true LRU), results are
        cached per generation with epoch invalidation, and execution
        routes through the planner with this database's attribute index
        attached. ``parallel=N`` fans the scan/residual phase of
        scan-strategy plans out over ``N`` shard workers
        (:class:`repro.query.parallel.ParallelExecutor`;
        ``parallel_mode`` picks ``"process"`` or ``"thread"``).
        ``naive=True`` forces the definitional full scan (the oracle),
        bypassing every cache.
        """
        return self._query_at(self._state, text, naive=naive,
                              parallel=parallel,
                              parallel_mode=parallel_mode)

    def explain(self, text: str, *, analyze: bool = False):
        """The :class:`~repro.query.planner.Plan` for a textual query.

        The plan names the physical strategy (``index`` / ``columnar``
        / ``row-scan``) and the planner's estimated row count;
        ``analyze=True`` also executes it and reports ``actual_rows``.
        Aggregate queries return an
        :class:`~repro.query.planner.AggregatePlan` wrapping the
        selection plan.
        """
        state = self._state
        spec = self._parsed(text)
        query = spec.query(state.dataset(), index=state.attr_index,
                           columns=state.columns)
        if spec.is_aggregate:
            return query.explain_aggregate(spec.aggregates, spec.group,
                                           analyze=analyze)
        return query.explain(analyze=analyze)

    # -- joins -------------------------------------------------------------------

    def _join_query(self, state: _DBState, left_text: str,
                    right_text: str, on):
        from repro.core.errors import QueryError
        from repro.query.join import JoinQuery

        left_spec = self._parsed(left_text)
        right_spec = self._parsed(right_text)
        if left_spec.is_aggregate or right_spec.is_aggregate:
            raise QueryError("join inputs must be selection queries, "
                             "not aggregates")
        left = left_spec.query(state.dataset(), index=state.attr_index,
                               columns=state.columns)
        right = right_spec.query(state.dataset(),
                                 index=state.attr_index,
                                 columns=state.columns)
        return JoinQuery(left, right, on), left_spec, right_spec

    def join_query(self, left_text: str, right_text: str,
                   on: "str | tuple[str, ...]", *,
                   naive: bool = False) -> list:
        """Join two textual selections of this store on key path(s).

        Each text is a ``select`` query whose *condition* picks one
        join input (both read the same pinned generation — the common
        self-join-across-sources shape of the paper's multi-source
        data). Returns :class:`~repro.query.join.JoinRow` pairs in
        canonical order; ``maybe`` rows matched only under some
        resolution of an or-value / ⊥. Results are cached per
        generation under a composite key whose footprint spans *both*
        inputs, so a write to either side — probe side included —
        invalidates correctly. ``naive=True`` runs the nested-loop
        oracle, uncached.
        """
        state = self._state
        join, left_spec, right_spec = self._join_query(
            state, left_text, right_text, on)
        if naive:
            return join.rows(naive=True)
        key = (f"join on {', '.join(join._on)}: "
               f"[{left_text}] [{right_text}]")
        cached = self._results.lookup(key, state.generation)
        if cached is not None:
            return cached
        rows = join.rows()
        from repro.query.compile import join_invalidation_profile
        from repro.query.paths import parse_path

        paths, safe = join_invalidation_profile(
            left_spec.condition, right_spec.condition,
            tuple(parse_path(path) for path in join._on))
        self._results.store(key, state.generation, rows, paths, safe)
        return rows

    def explain_join(self, left_text: str, right_text: str,
                     on: "str | tuple[str, ...]", *,
                     analyze: bool = False):
        """The :class:`~repro.query.planner.JoinPlan` for
        :meth:`join_query` (build/probe sides, strategy, estimated vs
        actual rows per side)."""
        join, _, _ = self._join_query(self._state, left_text,
                                      right_text, on)
        return join.explain(analyze=analyze)

    def cache_stats(self) -> dict[str, int]:
        """Result-cache counters (hits/misses/retags/evictions)."""
        return self._results.stats()

    # -- parallel execution ------------------------------------------------------

    def _executor(self, state: _DBState, workers: int, mode: str):
        """The shard-worker pool for one generation, built on demand.

        Executors cache per ``(workers, mode)`` so alternating pool
        shapes on an unchanged store never re-shard or re-ship the
        data; a write retires every pool (their shards are stale) and
        the next parallel query rebuilds from the new state.
        """
        from repro.query.parallel import ParallelExecutor

        with self._executor_lock:
            if self._executor_generation != state.generation:
                for executor in self._executor_slots.values():
                    executor.close()
                self._executor_slots.clear()
                self._executor_generation = state.generation
            executor = self._executor_slots.get((workers, mode))
            if executor is None:
                executor = ParallelExecutor(
                    state.dataset(), workers=workers,
                    index=state.attr_index, mode=mode)
                self._executor_slots[(workers, mode)] = executor
            return executor

    def close(self) -> None:
        """Release the parallel worker pools and the write-ahead log.

        A running background compaction is joined first so the log and
        snapshot are left in a consistent resting state. Closing is
        safe at any time: every committed generation is already on
        disk, so close() adds no durability of its own.
        """
        with self._executor_lock:
            for executor in self._executor_slots.values():
                executor.close()
            self._executor_slots.clear()
        thread = self._compact_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=60)
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- merging ------------------------------------------------------------------

    def merge_in(self, source: DataSet, key: Iterable[str], *,
                 parallel: int = 0) -> int:
        """Union a new source into the database (Definition 12).
        Returns the resulting size.

        The step is applied as a net diff: only the data the ``∪K``
        actually replaced or introduced touch the marker index and the
        maintained key indexes, and the whole step is one atomic batch
        — concurrent readers see the store before or after the merge,
        never partway. ``parallel > 0`` routes the union through the
        blocked pipeline's worker pool
        (:func:`repro.store.bulk.blocked_union`); results are identical.
        """
        checked = check_key(key)
        if self._intern:
            source = DataSet(intern_data(datum) for datum in source)
        elif not isinstance(source, DataSet):
            source = DataSet(source)
        with self._lock:
            # Diff against the chain head so pending commits are part
            # of the union, atomically with the chain extension.
            head = self._head
            data = head.data
            if parallel:
                merged = set(blocked_union(
                    [head.dataset(), source], checked,
                    parallel=parallel))
                removed = tuple(d for d in data if d not in merged)
                added = tuple(d for d in merged if d not in data)
            else:
                diff = union_diff(data, self._head_key_index(checked),
                                  source, checked)
                removed, added = diff.removed, diff.added
            outcome = self._apply_locked(
                removed,
                tuple(self._canonical(datum) for datum in added))
        delta_removed, delta_added = self._finish(outcome)
        return len(data) - len(delta_removed) + len(delta_added)

    # -- incremental durability --------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log (``None`` unless opened
        durable)."""
        return self._wal

    @classmethod
    def open(cls, path: str | Path, *, durable: bool = True,
             intern_objects: bool = True,
             index_paths: Iterable[str] = (),
             result_cache_size: int = _RESULT_CACHE_SIZE,
             compact_bytes: int = _COMPACT_BYTES,
             auto_compact: bool = True,
             fsync: bool = True,
             group_commit: bool = True,
             commit_interval: float = 0.0) -> "Database":
        """Open a durable database: snapshot plus write-ahead log.

        ``path`` is the snapshot file (created on first compaction if
        missing); the log lives beside it at ``<path>.wal``. Recovery
        replays the log's longest intact frame prefix on top of the
        snapshot — a torn or corrupt tail is truncated, never fatal —
        and lands on exactly the last durably committed generation.
        From then on every committed write batch is appended to the
        log and fsynced *before* the new generation is published, so a
        crash (power loss, SIGKILL) at any instant loses at most the
        single commit whose frame never reached the disk.

        Once the log exceeds ``compact_bytes``, a background thread
        rewrites the snapshot at the current generation and truncates
        the log (``auto_compact=False`` leaves that to explicit
        :meth:`compact` calls). ``fsync=False`` trades the per-commit
        fsync away for speed (contents survive process death but not
        power loss). ``durable=False`` degrades to a plain
        :meth:`load`.

        ``group_commit=True`` (the default) routes commits through the
        :class:`~repro.store.wal.GroupCommitter`: concurrent writers'
        frames are batched and fsynced by one elected leader with a
        single syscall pair, amortizing the dominant commit cost;
        ``group_commit=False`` restores the serialized per-commit
        append + fsync. ``commit_interval`` (seconds, at most 1.0)
        makes a fresh leader linger before draining the queue so even
        writers that never overlap in time coalesce into one batch —
        each commit then waits up to the interval, in exchange for
        far fewer fsyncs under a steady trickle of writers.

        ``intern_objects``/``index_paths``/``result_cache_size`` apply
        to a freshly created store; an existing snapshot keeps its own
        interning flag and persisted indexes (``index_paths`` are
        still ensured via :meth:`create_index`).
        """
        target = Path(path)
        if not durable:
            return cls.load(target)
        if target.exists():
            database = cls.load(target)
            with open(target, "rb") as probe:
                magic = probe.read(len(_BINARY_MAGIC))
            snapshot_format = ("binary" if magic == _BINARY_MAGIC
                               else "json")
        else:
            database = cls((), intern_objects=intern_objects,
                           result_cache_size=result_cache_size)
            snapshot_format = "binary"
        log_path = wal_path(target)
        scan = scan_wal(log_path, intern=database._intern)
        if scan.exists and scan.header_valid:
            if (scan.base_generation or 0) > database.generation:
                raise CodecError(
                    f"write-ahead log {log_path} starts at generation "
                    f"{scan.base_generation}, ahead of the snapshot "
                    f"(generation {database.generation})")
            database._replay_frames(scan.frames)
        log = WriteAheadLog(log_path,
                            base_generation=database.generation,
                            interned=database._intern, fsync=fsync,
                            scan=scan)
        if log.last_generation != database.generation:
            # The snapshot is ahead of every logged frame (an
            # out-of-band save, or a log from an older incarnation):
            # the frames are already reflected, and the next append
            # must chain from the snapshot's generation.
            log.rebase(database.generation)
        database._path = target
        database._snapshot_format = snapshot_format
        database._compact_bytes = compact_bytes
        database._auto_compact = auto_compact
        database._wal = log
        if group_commit:
            database._committer = GroupCommitter(
                log, commit_interval=commit_interval,
                commit_lock=database._publish_lock,
                on_durable=database._on_batch_durable,
                on_abort=database._on_batch_abort)
        for indexed in index_paths:
            database.create_index(indexed)
        return database

    @classmethod
    def recover_to(cls, path: str | Path,
                   generation: int | None = None) -> "Database":
        """Point-in-time recovery: the store as of one logged
        generation.

        Replays the write-ahead log beside ``path`` only up to
        ``generation`` (default: the last intact frame) and returns a
        plain in-memory database pinned there — no log is attached, so
        inspecting (or :meth:`save`-ing) the historical state never
        forks the durable history. Raises :class:`CodecError` for a
        generation older than the snapshot (compaction discarded its
        history) or newer than anything logged.
        """
        target = Path(path)
        database = cls.load(target) if target.exists() else cls()
        scan = scan_wal(wal_path(target), intern=database._intern)
        frames: list[WalFrame] = []
        if scan.exists and scan.header_valid:
            if (scan.base_generation or 0) > database.generation:
                raise CodecError(
                    f"write-ahead log starts at generation "
                    f"{scan.base_generation}, ahead of the snapshot "
                    f"(generation {database.generation})")
            frames = scan.frames
        top = max(database.generation,
                  frames[-1].generation if frames else 0)
        if generation is None:
            generation = top
        if generation < database.generation:
            raise CodecError(
                f"generation {generation} predates the snapshot "
                f"(generation {database.generation}); compaction "
                f"discarded its history")
        if generation > top:
            raise CodecError(
                f"generation {generation} was never logged "
                f"(latest recoverable is {top})")
        database._replay_frames(frames, upto=generation)
        return database

    def _replay_frames(self, frames: Iterable[WalFrame],
                       upto: int | None = None) -> None:
        """Rebuild this store's state from logged frames (open-time
        only — no locks, no cache commits, no log appends).

        Replay is idempotent: each frame's diff is renormalized
        against the running contents, so frames the snapshot already
        contains (the crash-mid-compaction window) fall out as no-ops
        while the final generation still lands on the last frame
        replayed. Indexes are patched copy-on-write per frame, keeping
        an index-warm snapshot load warm through replay.
        """
        state = self._state
        data = set(state.data)
        marker_index = state.marker_index
        attr_index = state.attr_index
        key_indexes = state.key_indexes
        generation = state.generation
        changed = False
        for frame in frames:
            if upto is not None and frame.generation > upto:
                break
            generation = max(generation, frame.generation)
            added_set = set(frame.added)
            delta_removed = tuple(datum for datum in frame.removed
                                  if datum in data
                                  and datum not in added_set)
            delta_added = tuple(datum for datum in frame.added
                                if datum not in data)
            if not delta_removed and not delta_added:
                continue
            changed = True
            data.difference_update(delta_removed)
            data.update(delta_added)
            marker_index = _patched_markers(marker_index, delta_removed,
                                            delta_added)
            attr_index, _ = attr_index.patched(delta_removed,
                                               delta_added)
            key_indexes = {
                key: index.patched(delta_removed, delta_added)
                for key, index in key_indexes.items()}
        if not changed and generation == state.generation:
            return
        self._state = _DBState(
            generation=generation,
            data=frozenset(data) if changed else state.data,
            marker_index=marker_index,
            key_indexes=key_indexes,
            attr_index=attr_index,
            dataset=None if changed else state._dataset,
        )
        self._head = self._state

    def compact(self) -> None:
        """Rewrite the snapshot at the current generation and truncate
        the log to the frames committed after it.

        Crash-safe at every instant: the new snapshot temp and the new
        log temp are both fsynced before either replace; the snapshot
        is replaced *first*, so a crash between the two replaces
        leaves new-snapshot + old-log — and replaying the old log's
        frames over the new snapshot is a no-op by idempotent replay.
        Writers keep committing while the snapshot temp is written;
        the pin and the brief swap serialize behind the publish lock —
        the lock every append + publish (leader batch or serialized
        commit) runs under — so the pinned ``(state, log offset)``
        pair is always mutually consistent and no freshly appended
        frame can be dropped.
        """
        log = self._wal
        if log is None:
            raise CodecError(
                "compact() requires a durable database "
                "(Database.open(path, durable=True))")
        with self._compact_lock:
            with self._publish_lock:
                state = self._state
                offset = log.size
            target = self._path
            assert target is not None
            target.parent.mkdir(parents=True, exist_ok=True)
            snapshot_temp: str | None = self._write_snapshot_temp(
                state, target, self._snapshot_format)
            try:
                with self._publish_lock:
                    tail = log.read_from(offset)
                    log_temp: str | None = log.rewrite_temp(
                        state.generation, tail)
                    try:
                        _maybe_crash("compact-pre-snapshot-swap")
                        os.replace(snapshot_temp, target)
                        snapshot_temp = None
                        fsync_directory(target.parent)
                        _maybe_crash("compact-pre-wal-swap")
                        log.swap(log_temp, state.generation)
                        log_temp = None
                    finally:
                        if log_temp and os.path.exists(log_temp):
                            os.unlink(log_temp)
            finally:
                if snapshot_temp and os.path.exists(snapshot_temp):
                    os.unlink(snapshot_temp)

    def _spawn_compaction(self) -> None:
        """Kick off one background compaction (at most one at a time).

        Callers arrive from two paths — a serialized commit under the
        writer lock, or a group-commit leader under the publish lock —
        so the spawn check has its own tiny lock instead of assuming
        either.
        """
        with self._compact_spawn:
            thread = self._compact_thread
            if thread is not None and thread.is_alive():
                return

            def run() -> None:
                try:
                    self.compact()
                except BaseException as exc:  # pragma: no cover - disk I/O
                    warnings.warn(
                        f"background WAL compaction failed: {exc}",
                        RuntimeWarning, stacklevel=2)

            thread = threading.Thread(target=run,
                                      name="repro-wal-compact",
                                      daemon=True)
            self._compact_thread = thread
            thread.start()

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path, *, format: str = "json") -> None:
        """Write the database to ``path`` atomically and durably.

        The payload goes to a temp file in the target directory, is
        flushed and fsynced, and only then ``os.replace``d over the
        target (the directory entry is fsynced too on POSIX) — a crash
        at any point leaves either the old file or the new one, never a
        torn or empty write. The written contents are one generation:
        the state is pinned once, so a concurrent writer cannot tear
        the file's dataset/index sections apart.

        ``format="binary"`` writes the :mod:`repro.binary_codec`
        container: the dataset streamed through a deduplicating value
        table, followed by the current key-index and attribute-index
        signatures keyed to a content digest, so :meth:`load` can
        restore the indexes without recomputing a single signature.
        """
        if format not in ("json", "binary"):
            raise CodecError(
                f"unknown database format {format!r} "
                f"(expected 'json' or 'binary')")
        state = self._state
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        temp_name = self._write_snapshot_temp(state, target, format)
        try:
            os.replace(temp_name, target)
            fsync_directory(target.parent)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    def _write_snapshot_temp(self, state: _DBState, target: Path,
                             format: str) -> str:
        """Write one pinned state to an fsynced temp file beside
        ``target``; returns the temp name (caller replaces/unlinks)."""
        descriptor, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp")
        try:
            if format == "binary":
                with os.fdopen(descriptor, "wb") as handle:
                    self._write_binary(handle, state)
                    handle.flush()
                    os.fsync(handle.fileno())
            else:
                payload = {
                    "format": _FORMAT,
                    "version": _VERSION,
                    "generation": state.generation,
                    "dataset": encode_dataset(state.dataset()),
                }
                with os.fdopen(descriptor, "w") as handle:
                    json.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        return temp_name

    @classmethod
    def load(cls, path: str | Path, *,
             format: str | None = None) -> "Database":
        """Read a database written by :meth:`save`.

        The on-disk format is auto-detected (binary files start with a
        magic prefix); pass ``format="json"``/``"binary"`` to force.
        Binary loads restore the persisted key/attribute indexes when
        the stored content digest matches the dataset section, and
        rebuild them otherwise.
        """
        if format is None:
            try:
                with open(path, "rb") as probe:
                    magic = probe.read(len(_BINARY_MAGIC))
            except OSError as exc:
                raise CodecError(
                    f"cannot read database {path}: {exc}") from exc
            format = "binary" if magic == _BINARY_MAGIC else "json"
        if format == "binary":
            try:
                with open(path, "rb") as handle:
                    return cls._read_binary(handle)
            except OSError as exc:
                raise CodecError(
                    f"cannot read database {path}: {exc}") from exc
        if format != "json":
            raise CodecError(
                f"unknown database format {format!r} "
                f"(expected 'json' or 'binary')")
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            # ValueError covers JSONDecodeError and the UnicodeDecodeError
            # a binary file raises when force-read as JSON text.
            raise CodecError(f"cannot read database {path}: {exc}") from exc
        if not isinstance(payload, dict) or \
                payload.get("format") != _FORMAT:
            raise CodecError(f"{path} is not a repro database file")
        if payload.get("version") != _VERSION:
            raise CodecError(
                f"unsupported database version {payload.get('version')!r}")
        generation = payload.get("generation", 0)
        if not isinstance(generation, int) or generation < 0:
            raise CodecError(
                f"invalid snapshot generation {generation!r}")
        database = cls(decode_dataset(payload["dataset"]))
        if generation:
            state = database._state
            database._state = _DBState(
                generation, state.data, state.marker_index,
                state.key_indexes, state.attr_index, state._dataset)
            database._head = database._state
        return database

    # -- binary container ---------------------------------------------------------

    def _write_binary(self, handle: IO[bytes], state: _DBState) -> None:
        """Stream the binary container: header, dataset, digest, indexes.

        The dataset section iterates the pinned state's raw element set
        (no canonical sort — ``structural_key`` recursion stays off the
        persistence path). Index sections reference data by their
        position in the written stream and subobjects by their codec
        value-table refs, so persisting the indexes costs varints, not
        re-encoded values.
        """
        # An interned database never holds two structurally equal but
        # distinct objects, so identity dedup alone is complete there.
        encoder = Encoder(handle, hasher=hashlib.sha256(), header=False,
                          dedup_shapes=not self._intern)
        encoder.write_bytes(_BINARY_MAGIC)
        encoder.write_uvarint(_BINARY_VERSION)
        encoder.write_uvarint(binary_codec.VERSION)
        encoder.write_uvarint(_FLAG_INTERNED if self._intern else 0)
        encoder.write_uvarint(state.generation)
        # order maps id(datum) -> pre-packed position varint: index
        # sections reference each datum ~once per indexed path, so
        # packing the position once amortizes across all of them.
        order: dict[int, bytes] = {}
        for position, datum in enumerate(state.data):
            order[id(datum)] = binary_codec.pack_uvarint(position)
            encoder.write_datum(datum)
        encoder.write_end()
        # Digest of everything up to and including END pins the index
        # sections to this exact dataset encoding.
        encoder.write_string(encoder.hexdigest())
        self._write_attr_section(encoder, order, state.attr_index)
        self._write_key_section(encoder, order, state.key_indexes)
        encoder.flush()

    @staticmethod
    def _write_data_refs(encoder: Encoder, data: Iterable[Data],
                         order: dict[int, bytes]) -> None:
        refs = [order[id(datum)] for datum in data]
        encoder.write_uvarint(len(refs))
        encoder.write_bytes(b"".join(refs))

    def _write_attr_section(self, encoder: Encoder,
                            order: dict[int, bytes],
                            attr_index: AttrIndex) -> None:
        entries = list(attr_index.entries())
        encoder.write_uvarint(len(entries))
        for steps, postings, exists in entries:
            encoder.write_uvarint(len(steps))
            for step in steps:
                encoder.write_string(step)
            self._write_data_refs(encoder, exists, order)
            encoder.write_uvarint(len(postings))
            for value, holders in postings.items():
                encoder.write_ref(value)
                self._write_data_refs(encoder, holders, order)

    def _write_key_section(self, encoder: Encoder,
                           order: dict[int, bytes],
                           key_indexes: dict[frozenset[str], KeyIndex],
                           ) -> None:
        encoder.write_uvarint(len(key_indexes))
        for key, index in key_indexes.items():
            encoder.write_uvarint(len(key))
            for attr in sorted(key):
                encoder.write_string(attr)
            encoder.write_uvarint(len(index.buckets))
            for sig, bucket in index.buckets.items():
                self._write_signature(encoder, sig)
                self._write_data_refs(encoder, bucket, order)
            self._write_data_refs(encoder, index.scan_list, order)
            self._write_data_refs(encoder, index.never_list, order)

    @staticmethod
    def _write_signature(encoder: Encoder, sig: Hashable) -> None:
        kind, payload = sig  # buckets never hold NEVER/UNINDEXABLE
        if kind == "whole":
            encoder.write_uvarint(_SIG_WHOLE)
            encoder.write_ref(payload)
        else:
            encoder.write_uvarint(_SIG_TUPLE)
            encoder.write_uvarint(len(payload))
            for label, attr in payload:
                encoder.write_string(label)
                encoder.write_ref(attr)

    @classmethod
    def _read_binary(cls, handle: IO[bytes]) -> "Database":
        decoder = Decoder(handle, hasher=hashlib.sha256(), header=False)
        magic = decoder.read_bytes(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise CodecError("not a repro binary database file")
        container_version = decoder.read_uvarint()
        if container_version not in _BINARY_READABLE:
            raise CodecError(
                f"unsupported database version {container_version!r}")
        codec_version = decoder.read_uvarint()
        if codec_version != binary_codec.VERSION:
            raise CodecError(
                f"unsupported binary codec version {codec_version!r} "
                f"(this build reads version {binary_codec.VERSION})")
        interned = bool(decoder.read_uvarint() & _FLAG_INTERNED)
        # Version 1 predates the generation field; such snapshots
        # reopen at generation 0 (they never had a paired WAL).
        generation = (decoder.read_uvarint()
                      if container_version >= 2 else 0)
        decoder.intern = interned
        data_order = list(decoder.iter_data())
        if not decoder.ended:
            # EOF landed on a frame boundary before the END marker — a
            # truncated file must never load as a smaller database.
            raise CodecError(
                "truncated binary database: dataset section has no "
                "END frame")
        dataset_digest = decoder.hexdigest()

        data = frozenset(data_order)
        attr_index = AttrIndex()
        key_indexes: dict[frozenset[str], KeyIndex] = {}

        # The index sections are an optimization, never a correctness
        # dependency: any parse problem or digest mismatch falls back
        # to rebuilding from the data (keeping the recorded paths/keys
        # when the section structure itself was readable).
        attr_entries: list | None = None
        key_structs: list | None = None
        stored_digest = None
        try:
            stored_digest = decoder.read_string()
            attr_entries = cls._read_attr_section(decoder, data_order)
            key_structs = cls._read_key_section(decoder, data_order)
        except CodecError:
            pass
        if (stored_digest == dataset_digest and attr_entries is not None
                and key_structs is not None):
            attr_index = AttrIndex.restore(attr_entries)
            key_indexes = {
                key: KeyIndex.restore(key, buckets, scan, never)
                for key, buckets, scan, never in key_structs}
        else:
            if attr_entries:
                attr_index = AttrIndex(
                    [steps for steps, _, _ in attr_entries], data_order)
            if key_structs:
                key_indexes = {
                    key: KeyIndex(data, key)
                    for key, _, _, _ in key_structs}

        database = cls.__new__(cls)
        database._intern = interned
        database._init_runtime(_DBState(
            generation=generation,
            data=data,
            marker_index=_build_marker_index(data),
            key_indexes=key_indexes,
            attr_index=attr_index,
        ))
        return database

    @staticmethod
    def _read_data_refs(decoder: Decoder,
                        data_order: list[Data]) -> set[Data]:
        count = decoder.read_uvarint()
        refs = decoder.read_uvarint_seq(count)
        try:
            return set(map(data_order.__getitem__, refs))
        except IndexError:
            bad = next(ref for ref in refs if ref >= len(data_order))
            raise CodecError(
                f"invalid datum reference {bad} in index section") \
                from None

    @staticmethod
    def _read_data_ref_list(decoder: Decoder,
                            data_order: list[Data]) -> list[Data]:
        """Like :meth:`_read_data_refs` but preserves the written order
        (key-index buckets are lists, so no set needs building)."""
        count = decoder.read_uvarint()
        refs = decoder.read_uvarint_seq(count)
        try:
            return list(map(data_order.__getitem__, refs))
        except IndexError:
            bad = next(ref for ref in refs if ref >= len(data_order))
            raise CodecError(
                f"invalid datum reference {bad} in index section") \
                from None

    @classmethod
    def _read_attr_section(cls, decoder: Decoder,
                           data_order: list[Data]) -> list:
        entries = []
        for _ in range(decoder.read_uvarint()):
            steps = tuple(decoder.read_label()
                          for _ in range(decoder.read_uvarint()))
            exists = cls._read_data_refs(decoder, data_order)
            postings = {}
            for _ in range(decoder.read_uvarint()):
                value = decoder.node(decoder.read_uvarint())
                postings[value] = cls._read_data_refs(decoder, data_order)
            entries.append((steps, postings, exists))
        return entries

    @classmethod
    def _read_key_section(cls, decoder: Decoder,
                          data_order: list[Data]) -> list:
        structs = []
        for _ in range(decoder.read_uvarint()):
            key = frozenset(decoder.read_label()
                            for _ in range(decoder.read_uvarint()))
            buckets = {}
            for _ in range(decoder.read_uvarint()):
                sig = cls._read_signature(decoder)
                buckets[sig] = cls._read_data_ref_list(
                    decoder, data_order)
            scan = cls._read_data_ref_list(decoder, data_order)
            never = cls._read_data_ref_list(decoder, data_order)
            structs.append((key, buckets, scan, never))
        return structs

    @staticmethod
    def _read_signature(decoder: Decoder) -> Hashable:
        # Tuple signatures dominate (every fully-keyed datum gets one),
        # so they are dispatched first with bound locals.
        kind = decoder.read_uvarint()
        if kind == _SIG_TUPLE:
            read_label = decoder.read_label
            read_uvarint = decoder.read_uvarint
            node = decoder.node
            return ("tuple", tuple(
                (read_label(), node(read_uvarint()))
                for _ in range(read_uvarint())))
        if kind == _SIG_WHOLE:
            return ("whole", decoder.node(decoder.read_uvarint()))
        raise CodecError(f"unknown signature kind {kind!r}")


class DatabaseView:
    """A pinned read transaction: one generation, many reads.

    Obtained from :meth:`Database.view`. Every method answers against
    the state published when the view was taken — a concurrent writer
    can advance the database arbitrarily without the view noticing.
    Cached results consulted (and contributed) by :meth:`query` are
    tagged with the view's generation, so a view never reads a result
    from any other generation.
    """

    __slots__ = ("_database", "_state")

    def __init__(self, database: Database, state: _DBState):
        self._database = database
        self._state = state

    @property
    def generation(self) -> int:
        return self._state.generation

    def __len__(self) -> int:
        return len(self._state.data)

    def __contains__(self, datum: object) -> bool:
        return datum in self._state.data

    def __iter__(self) -> Iterator[Data]:
        return iter(self.snapshot())

    def snapshot(self) -> DataSet:
        """The pinned generation's frozen contents."""
        return self._state.dataset()

    def by_marker(self, marker: Marker | str) -> DataSet:
        """All pinned data whose marker part mentions ``marker``."""
        if isinstance(marker, str):
            marker = Marker(marker)
        return DataSet(self._state.marker_index.get(marker, set()))

    def query(self, text: str, *, naive: bool = False) -> DataSet:
        """Run a textual query against the pinned generation."""
        return self._database._query_at(self._state, text, naive=naive)

    def explain(self, text: str, *, analyze: bool = False):
        """The plan the pinned generation would use for a query."""
        state = self._state
        return self._database._parsed(text).query(
            state.dataset(), index=state.attr_index,
            columns=state.columns).explain(analyze=analyze)
