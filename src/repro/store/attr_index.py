"""Inverted attribute indexes over configurable paths.

The query layer's conditions are *existential* (``Eq("author", "Bob")``
holds when **some** value the path reaches equals the atom — elements of
sets and disjuncts of or-values all count), so the honest inverted index
entry for a datum is the full set of values its paths reach under
spread evaluation. :class:`AttrIndex` maintains, per configured path,

* a postings map ``reached value → {data}`` — exact support for
  ``Eq(path, value)``, because ``d ∈ postings[v]`` iff ``v`` is
  spread-reachable in ``d`` iff ``Eq(path, v).matches(d.object)``;
* an existence set ``{data where the path reaches ≥ 1 value}`` — exact
  support for ``Exists(path)``;
* the postings vocabulary doubles as a ``Contains`` accelerator: the
  distinct string atoms a path reaches are typically far fewer than the
  data, so scanning the vocabulary and unioning matching postings beats
  a full scan.

Like the marker and key indexes on
:class:`~repro.store.database.Database`, the index is *incremental*:
``add``/``remove`` patch it one datum at a time. Values are plain model
objects — hashable, with cached structural hashes — and when the store
interns (the :class:`Database` default) the postings keys are the
canonical interned representatives, so every probe hashes a
pointer-shared object exactly as the key-signature memo in
:mod:`repro.store.index` does.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.data import Data
from repro.core.errors import QueryError
from repro.core.objects import Atom, SSObject
from repro.query.paths import iter_path, parse_path

__all__ = ["AttrIndex"]

#: A parsed attribute path.
Steps = tuple[str, ...]


def _as_steps(path: str | Sequence[str]) -> Steps:
    if isinstance(path, str):
        return parse_path(path)
    steps = tuple(path)
    if not steps or any(not step for step in steps):
        raise QueryError(f"invalid index path {path!r}")
    return steps


class AttrIndex:
    """Incremental inverted index of a data collection by attribute path.

    ``paths`` configures which attribute paths are indexed; data added
    later are spread through sets and or-values so the index agrees with
    the existential semantics of conditions. The planner
    (:mod:`repro.query.planner`) consumes the candidate sets; everything
    it cannot answer from here falls back to a scan.
    """

    def __init__(self, paths: Iterable[str | Sequence[str]] = (),
                 data: Iterable[Data] = ()):
        self._postings: dict[Steps, dict[SSObject, set[Data]]] = {}
        self._exists: dict[Steps, set[Data]] = {}
        for path in paths:
            steps = _as_steps(path)
            self._postings.setdefault(steps, {})
            self._exists.setdefault(steps, set())
        for datum in data:
            self.add(datum)

    @property
    def paths(self) -> frozenset[Steps]:
        """The parsed paths this index covers."""
        return frozenset(self._postings)

    @classmethod
    def restore(cls, entries: Iterable[tuple[
            Steps, dict[SSObject, set[Data]], set[Data]]]) -> "AttrIndex":
        """Rehydrate an index from persisted ``(steps, postings,
        exists)`` triples without re-walking any paths.

        Used by the binary snapshot loader, which validates the
        persisted postings against the dataset's content digest before
        trusting them.
        """
        index = cls()
        for steps, postings, exists in entries:
            index._postings[steps] = postings
            index._exists[steps] = exists
        return index

    def entries(self) -> Iterator[tuple[
            Steps, dict[SSObject, set[Data]], set[Data]]]:
        """Yield ``(steps, postings, exists)`` per indexed path.

        The export counterpart of :meth:`restore`; the snapshot layer
        serializes these triples verbatim. The yielded mappings are the
        live structures — callers must not mutate them.
        """
        for steps, postings in self._postings.items():
            yield steps, postings, self._exists[steps]

    def covers(self, path: str | Sequence[str]) -> bool:
        """Whether the path is indexed."""
        return _as_steps(path) in self._postings

    def __bool__(self) -> bool:
        return bool(self._postings)

    def __len__(self) -> int:
        """Number of indexed paths."""
        return len(self._postings)

    # -- maintenance -----------------------------------------------------------

    def add_path(self, path: str | Sequence[str],
                 data: Iterable[Data] = ()) -> Steps:
        """Start indexing one more path, backfilling from ``data``."""
        steps = _as_steps(path)
        if steps in self._postings:
            return steps
        postings: dict[SSObject, set[Data]] = {}
        exists: set[Data] = set()
        for datum in data:
            values = set(iter_path(datum.object, steps, spread=True))
            if values:
                exists.add(datum)
                for value in values:
                    postings.setdefault(value, set()).add(datum)
        self._postings[steps] = postings
        self._exists[steps] = exists
        return steps

    def add(self, datum: Data) -> None:
        """Index one datum under every configured path."""
        for steps, postings in self._postings.items():
            values = set(iter_path(datum.object, steps, spread=True))
            if values:
                self._exists[steps].add(datum)
                for value in values:
                    postings.setdefault(value, set()).add(datum)

    def remove(self, datum: Data) -> None:
        """Drop one datum from every configured path.

        Reached values are recomputed (objects are immutable, so they
        are exactly what :meth:`add` saw), and emptied posting entries
        are deleted so the vocabulary never outgrows the live data.
        """
        for steps, postings in self._postings.items():
            values = set(iter_path(datum.object, steps, spread=True))
            if not values:
                continue
            self._exists[steps].discard(datum)
            for value in values:
                entries = postings.get(value)
                if entries is not None:
                    entries.discard(datum)
                    if not entries:
                        del postings[value]

    # -- copy-on-write ---------------------------------------------------------

    def with_path(self, path: str | Sequence[str],
                  data: Iterable[Data] = ()) -> "AttrIndex":
        """A new index additionally covering ``path``; ``self`` is
        untouched and the existing paths' structures are shared.

        The non-mutating counterpart of :meth:`add_path`, for stores
        that publish immutable state records.
        """
        steps = _as_steps(path)
        if steps in self._postings:
            return self
        index = AttrIndex.__new__(AttrIndex)
        index._postings = dict(self._postings)
        index._exists = dict(self._exists)
        backfill: dict[SSObject, set[Data]] = {}
        exists: set[Data] = set()
        for datum in data:
            values = set(iter_path(datum.object, steps, spread=True))
            if values:
                exists.add(datum)
                for value in values:
                    backfill.setdefault(value, set()).add(datum)
        index._postings[steps] = backfill
        index._exists[steps] = exists
        return index

    def patched(self, removed: Iterable[Data], added: Iterable[Data],
                ) -> tuple["AttrIndex", frozenset[Steps]]:
        """``(new index, touched paths)`` after a batch delta; ``self``
        is untouched.

        Structures for paths no delta datum reaches are shared with the
        old index; a touched path gets a shallow-copied postings map in
        which only the posting sets of affected values (and the exists
        set) are rebuilt. The touched-path set is exactly the invalidation
        information :meth:`repro.store.cache.QueryResultCache.commit`
        needs, computed as a by-product.
        """
        removed = list(removed)
        added = list(added)
        index = AttrIndex.__new__(AttrIndex)
        index._postings = dict(self._postings)
        index._exists = dict(self._exists)
        touched: set[Steps] = set()
        for steps in self._postings:
            rem_values: dict[Data, set[SSObject]] = {}
            add_values: dict[Data, set[SSObject]] = {}
            for datum in removed:
                values = set(iter_path(datum.object, steps, spread=True))
                if values:
                    rem_values[datum] = values
            for datum in added:
                values = set(iter_path(datum.object, steps, spread=True))
                if values:
                    add_values[datum] = values
            if not rem_values and not add_values:
                continue
            touched.add(steps)
            postings = dict(self._postings[steps])
            affected: dict[SSObject, tuple[set[Data], set[Data]]] = {}
            for datum, values in rem_values.items():
                for value in values:
                    affected.setdefault(value, (set(), set()))[0].add(datum)
            for datum, values in add_values.items():
                for value in values:
                    affected.setdefault(value, (set(), set()))[1].add(datum)
            for value, (rem, add) in affected.items():
                base = postings.get(value, frozenset())
                rebuilt = (set(base) - rem) | add
                if rebuilt:
                    postings[value] = rebuilt
                else:
                    postings.pop(value, None)
            exists = set(self._exists[steps])
            exists.difference_update(rem_values)
            exists.update(add_values)
            index._postings[steps] = postings
            index._exists[steps] = exists
        return index, frozenset(touched)

    # -- probes ----------------------------------------------------------------

    def equality_candidates(self, steps: Steps,
                            value: SSObject) -> frozenset[Data]:
        """Exactly the data where ``Eq(steps, value)`` holds."""
        entries = self._postings[steps].get(value)
        return frozenset(entries) if entries else frozenset()

    def exists_candidates(self, steps: Steps) -> frozenset[Data]:
        """Exactly the data where ``Exists(steps)`` holds."""
        return frozenset(self._exists.get(steps, ()))

    def contains_candidates(self, steps: Steps,
                            needle: str) -> frozenset[Data]:
        """Exactly the data where ``Contains(steps, needle)`` holds.

        Scans the path's vocabulary (distinct reached values) for
        string atoms containing the needle and unions their postings.
        """
        out: set[Data] = set()
        for value, entries in self._postings[steps].items():
            if (isinstance(value, Atom) and isinstance(value.value, str)
                    and needle in value.value):
                out.update(entries)
        return frozenset(out)

    def vocabulary(self, path: str | Sequence[str]) -> Iterator[SSObject]:
        """The distinct values a path reaches across the indexed data."""
        yield from self._postings[_as_steps(path)]

    def selectivity(self, steps: Steps) -> Mapping[SSObject, int]:
        """Posting-list sizes per value (diagnostics and ``explain``)."""
        return {value: len(entries)
                for value, entries in self._postings[steps].items()}
