"""Shared filesystem durability helpers for the storage layer.

Both the write-ahead log and the snapshot writer end their atomic
``os.replace`` protocols the same way: by fsyncing the *directory*
entry that records the rename. The helper lived as two identical
private copies (``wal._fsync_directory`` and
``database._fsync_directory``); it is one utility, so it lives here
once and both import it.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["fsync_directory"]


def fsync_directory(path: str | Path) -> None:
    """Best-effort fsync of a directory entry (POSIX only).

    ``os.replace`` makes a rename atomic, but the *directory* write
    that records it can still sit in the page cache; without this a
    crash right after a save can resurface the old file. Failures are
    swallowed: directory fsync is a belt-and-braces durability upgrade
    on filesystems that support it, never a correctness dependency —
    and some platforms (or containerized mounts) reject ``fsync`` on
    directory descriptors outright.
    """
    if os.name != "posix":
        return
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)
