"""Binary snapshot codec: interning-aware streaming persistence.

A compact length-prefixed wire format for model objects, data and data
sets. Compared to :mod:`repro.json_codec` it deduplicates shared
substructure through a value table, never recurses (no
:mod:`repro.core.guard` big-stack retries), and streams one datum at a
time. See :mod:`repro.binary_codec.codec` for the format specification.
"""

from repro.binary_codec.codec import (
    MAGIC,
    VERSION,
    Decoder,
    Encoder,
    dump_data,
    dump_dataset,
    dump_object,
    dumps_data,
    dumps_dataset,
    dumps_object,
    load_data,
    load_dataset,
    load_object,
    loads_data,
    loads_dataset,
    loads_object,
    pack_uvarint,
)

__all__ = [
    "MAGIC",
    "VERSION",
    "Encoder",
    "Decoder",
    "pack_uvarint",
    "dump_object",
    "load_object",
    "dump_data",
    "load_data",
    "dump_dataset",
    "load_dataset",
    "dumps_object",
    "loads_object",
    "dumps_data",
    "loads_data",
    "dumps_dataset",
    "loads_dataset",
]
