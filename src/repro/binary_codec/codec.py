"""Length-prefixed binary codec for model objects, data and data sets.

Where the tagged-JSON codec (:mod:`repro.json_codec`) spells every node
out per occurrence, this codec writes a *value table*: each structurally
distinct subobject is encoded exactly once, and every later occurrence
is a varint back-reference to its table slot. The sharing that
hash-consing creates (:mod:`repro.core.intern`) therefore costs bytes
once instead of per occurrence — the B80|B82-style shared marker parts
and repeated author sets a merged store is full of collapse into single
table entries on the wire, and decoding reconstructs each distinct node
once and *shares* it, so a decoded snapshot is born with the same
pointer sharing the intern pool would have given it.

Wire format (all integers are unsigned LEB128 varints, strings are a
varint byte length followed by UTF-8)::

    stream       := magic "RSSB", varint version, frame*
    frame        := node | record
    node         := BOTTOM
                  | ATOM_STR  string          | ATOM_INT  zigzag-varint
                  | ATOM_FLOAT 8 bytes LE     | ATOM_TRUE | ATOM_FALSE
                  | MARKER string
                  | OR    count, ref*         | PSET  count, ref*
                  | CSET  count, ref*         | TUPLE count, (label, ref)*
    record       := DATUM marker-ref, object-ref
                  | OBJECT ref
                  | END

Each ``node`` frame appends one object to the value table; its index is
the number of nodes defined so far. A ``ref`` is a varint index into the
table and must point *backwards* (children are always defined before
their parents), so decoding is a single forward pass with no recursion
and no lookahead.

**Iterative by construction.** Both directions run on explicit stacks
or flat loops: the encoder walks structure with a worklist and emits
children before parents; the decoder never descends at all, because a
node frame only mentions already-decoded children. Neither path ever
needs the big-stack retry thread of :mod:`repro.core.guard`, so
arbitrarily deep snapshots (≥600 nesting levels and far beyond)
(de)serialize on the default interpreter stack. The decoder forces each
node's structural hash as it is built — children first — so later set
membership and equality checks on decoded values are shallow too.

**Streaming.** :class:`Encoder` / :class:`Decoder` wrap binary file
objects and move one datum at a time (:meth:`Encoder.write_datum`,
:meth:`Decoder.iter_data`), so persisting a store never materializes a
second in-memory copy of the payload the way ``json.dumps`` of one
giant payload does. Both ends can feed a running content digest
(``hasher=``) for the index-validation scheme in
:class:`repro.store.database.Database`.

``intern=True`` on the decoding entry points interns every node as its
table slot is filled: repeated structure resolves to canonical pool
objects with O(1) identity hits, and the memoized ``⊴``/compatibility
fast paths apply to loaded data immediately.
"""

from __future__ import annotations

import io
import struct
from typing import IO, Any, Iterable, Iterator

from repro.core.data import Data, DataSet
from repro.core.errors import CodecError, ModelError
# Bound method of the process-wide pool (cleared in place, never
# rebound), saving a wrapper frame on the per-node decode path.
from repro.core.intern import _DEFAULT_POOL as _POOL

_adopt_object = _POOL.adopt
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)

__all__ = [
    "MAGIC", "VERSION", "Encoder", "Decoder", "pack_uvarint",
    "dump_object", "load_object", "dump_data", "load_data",
    "dump_dataset", "load_dataset",
    "dumps_object", "loads_object", "dumps_data", "loads_data",
    "dumps_dataset", "loads_dataset",
]

#: Stream magic; a binary stream that does not start with it is rejected.
MAGIC = b"RSSB"

#: Wire format version; bumped on incompatible changes.
VERSION = 1

# -- node frame tags (define value-table entries) ---------------------------
_T_BOTTOM = 0x00
_T_ATOM_STR = 0x01
_T_ATOM_INT = 0x02
_T_ATOM_FLOAT = 0x03
_T_ATOM_TRUE = 0x04
_T_ATOM_FALSE = 0x05
_T_MARKER = 0x06
_T_OR = 0x07
_T_PSET = 0x08
_T_CSET = 0x09
_T_TUPLE = 0x0A

# -- record frame tags ------------------------------------------------------
_T_DATUM = 0x10
_T_OBJECT = 0x11
_T_END = 0x1F

_FLOAT_STRUCT = struct.Struct("<d")

# Single-byte frame prefixes, prebuilt once (hot in _emit_node).
_B_BOTTOM = bytes((_T_BOTTOM,))
_B_ATOM_STR = bytes((_T_ATOM_STR,))
_B_ATOM_INT = bytes((_T_ATOM_INT,))
_B_ATOM_FLOAT = bytes((_T_ATOM_FLOAT,))
_B_ATOM_TRUE = bytes((_T_ATOM_TRUE,))
_B_ATOM_FALSE = bytes((_T_ATOM_FALSE,))
_B_MARKER = bytes((_T_MARKER,))
_B_TUPLE = bytes((_T_TUPLE,))
_B_DATUM = bytes((_T_DATUM,))
_B_OBJECT = bytes((_T_OBJECT,))
_B_END = bytes((_T_END,))

#: Writer buffer flush threshold.
_FLUSH_BYTES = 1 << 16

#: Reader refill chunk size.
_CHUNK_BYTES = 1 << 20


#: Single-byte varints, precomputed — the overwhelming majority of
#: varints on a real stream (tags, small refs, lengths) fit in one byte.
_UVARINT1 = [bytes((value,)) for value in range(0x80)]


def _pack_uvarint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0x80:
        return _UVARINT1[value]
    out = bytearray()
    while True:
        low = value & 0x7F
        value >>= 7
        if value:
            out.append(low | 0x80)
        else:
            out.append(low)
            return bytes(out)


def pack_uvarint(value: int) -> bytes:
    """Public varint packer for container formats framing the codec —
    lets them pre-pack values they write many times over."""
    return _pack_uvarint(value)


class _Writer:
    """Buffered byte sink with an optional running digest."""

    __slots__ = ("_stream", "_buf", "_hasher")

    def __init__(self, stream: IO[bytes], hasher: Any = None):
        self._stream = stream
        self._buf = bytearray()
        self._hasher = hasher

    def write(self, data: bytes) -> None:
        buf = self._buf
        buf += data
        if len(buf) >= _FLUSH_BYTES:
            self.flush()

    def flush(self) -> None:
        if self._buf:
            chunk = bytes(self._buf)
            if self._hasher is not None:
                self._hasher.update(chunk)
            self._stream.write(chunk)
            self._buf.clear()

    def hexdigest(self) -> str:
        """Digest of every byte written so far (flushes first)."""
        if self._hasher is None:
            raise CodecError("writer has no hasher attached")
        self.flush()
        return self._hasher.hexdigest()


class _Reader:
    """Buffered byte source that tracks a digest of *consumed* bytes.

    The reader may read ahead from the underlying stream, but the
    digest covers exactly the bytes the decoder has logically consumed,
    so a digest taken at a frame boundary matches the writer's digest
    at the same boundary even when the boundary falls mid-chunk.
    """

    __slots__ = ("_stream", "_chunk", "_pos", "_hasher", "_hashed")

    def __init__(self, stream: IO[bytes], hasher: Any = None):
        self._stream = stream
        self._chunk = b""
        self._pos = 0
        self._hasher = hasher
        self._hashed = 0

    def _refill(self, need: int) -> None:
        """Ensure at least ``need`` unread bytes are buffered."""
        if self._hasher is not None and self._hashed < self._pos:
            self._hasher.update(self._chunk[self._hashed:self._pos])
        remainder = self._chunk[self._pos:]
        parts = [remainder]
        have = len(remainder)
        while have < need:
            piece = self._stream.read(max(_CHUNK_BYTES, need - have))
            if not piece:
                break
            parts.append(piece)
            have += len(piece)
        self._chunk = b"".join(parts)
        self._pos = 0
        self._hashed = 0
        if have < need:
            raise CodecError(
                "truncated binary stream: unexpected end of input")

    def read_exact(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._chunk):
            self._refill(count)
            end = count
        data = self._chunk[self._pos:end]
        self._pos = end
        return data

    def read_byte(self) -> int:
        pos = self._pos
        if pos >= len(self._chunk):
            self._refill(1)
            pos = 0
        value = self._chunk[pos]
        self._pos = pos + 1
        return value

    def try_read_byte(self) -> int | None:
        """Like :meth:`read_byte` but ``None`` at clean end of input."""
        if self._pos >= len(self._chunk):
            try:
                self._refill(1)
            except CodecError:
                return None
        value = self._chunk[self._pos]
        self._pos += 1
        return value

    def read_uvarint(self) -> int:
        # Fast path: the whole varint is already buffered.
        pos = self._pos
        chunk = self._chunk
        size = len(chunk)
        if pos < size:
            byte = chunk[pos]
            pos += 1
            if byte < 0x80:
                self._pos = pos
                return byte
            value = byte & 0x7F
            shift = 7
            while pos < size:
                byte = chunk[pos]
                pos += 1
                if byte < 0x80:
                    self._pos = pos
                    return value | (byte << shift)
                value |= (byte & 0x7F) << shift
                shift += 7
                if shift > 10_000:
                    raise CodecError("malformed varint: unterminated")
        # Slow path: the varint crosses a chunk boundary. Nothing has
        # been consumed yet (only the local pos moved), so restart from
        # the varint's first byte with the refilling reader.
        value = 0
        shift = 0
        while True:
            byte = self.read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 10_000:
                raise CodecError("malformed varint: unterminated")

    def read_uvarint_seq(self, count: int) -> list[int]:
        """Read ``count`` consecutive varints in one buffered sweep."""
        out: list[int] = []
        append = out.append
        chunk = self._chunk
        pos = self._pos
        size = len(chunk)
        remaining = count
        while remaining > 0:
            remaining -= 1
            start = pos
            if pos < size:
                byte = chunk[pos]
                pos += 1
                if byte < 0x80:
                    append(byte)
                    continue
                value = byte & 0x7F
                shift = 7
                done = False
                while pos < size:
                    byte = chunk[pos]
                    pos += 1
                    if byte < 0x80:
                        value |= byte << shift
                        done = True
                        break
                    value |= (byte & 0x7F) << shift
                    shift += 7
                    if shift > 10_000:
                        raise CodecError(
                            "malformed varint: unterminated")
                if done:
                    append(value)
                    continue
            # Varint crosses the buffer end: rewind to its first byte
            # and take the refilling path, then resync the local view.
            self._pos = start
            append(self.read_uvarint())
            chunk = self._chunk
            pos = self._pos
            size = len(chunk)
        self._pos = pos
        return out

    def read_lp_bytes(self) -> bytes:
        """Read a length-prefixed byte string (varint length + bytes)."""
        # Fast path: one-byte length and the payload fully buffered.
        chunk = self._chunk
        pos = self._pos
        if pos < len(chunk):
            length = chunk[pos]
            if length < 0x80:
                end = pos + 1 + length
                if end <= len(chunk):
                    self._pos = end
                    return chunk[pos + 1:end]
        return self.read_exact(self.read_uvarint())

    def hexdigest(self) -> str:
        """Digest of every byte consumed so far."""
        if self._hasher is None:
            raise CodecError("reader has no hasher attached")
        if self._hashed < self._pos:
            self._hasher.update(self._chunk[self._hashed:self._pos])
            self._hashed = self._pos
        return self._hasher.hexdigest()


def _node_children(obj: SSObject) -> Iterable[SSObject]:
    """The direct children of a node, in raw (unsorted) order.

    Raw container order keeps the walk free of ``structural_key``
    sorting, which recurses and would reintroduce the depth limit this
    codec exists to avoid. Sets are order-free on the wire (refs are
    sorted numerically for stable output within a session).
    """
    if isinstance(obj, OrValue):
        return obj.disjuncts
    if isinstance(obj, (PartialSet, CompleteSet)):
        return obj.elements
    if isinstance(obj, Tuple):
        return [value for _, value in obj.items()]
    return ()


class Encoder:
    """Streaming encoder over a binary file object.

    One encoder owns one value table: everything written through it
    shares back-references, so interleaving many data (or whole data
    sets) into one stream dedups across all of them. Objects are
    deduplicated twice over — by identity (O(1) for hash-consed
    structure) and by shape (structurally equal objects from different
    pools still collapse to one table entry).
    """

    def __init__(self, stream: IO[bytes], *, hasher: Any = None,
                 header: bool = True, dedup_shapes: bool = True):
        self._writer = _Writer(stream, hasher)
        #: id(obj) -> table ref; the keepalive list pins the ids.
        self._by_id: dict[int, int] = {}
        #: structural shape key -> table ref (see _shape_key).
        self._by_shape: dict[tuple, int] = {}
        #: label -> length-prefixed UTF-8 bytes (labels repeat heavily).
        self._labels: dict[str, bytes] = {}
        #: packed[r] == _pack_uvarint(r) for every table ref issued so
        #: far — shared substructure makes refs far hotter than values.
        self._packed: list[bytes] = []
        self._keepalive: list[SSObject] = []
        self._count = 0
        #: Hash-consed input never has two distinct structurally equal
        #: objects, so a caller feeding interned structure only can turn
        #: the by-shape table off and rely on identity dedup alone —
        #: same wire bytes, minus the shape-key bookkeeping.
        self._dedup_shapes = dedup_shapes
        if header:
            self._writer.write(MAGIC + _pack_uvarint(VERSION))

    # -- the value table ----------------------------------------------------

    def _shape_key(self, node: SSObject) -> tuple:
        """A flat, ref-based stand-in for structural equality.

        Children are already canonicalized to table refs, so two nodes
        get equal keys iff they are structurally equal — without any
        deep hashing or deep ``==`` on the objects themselves.
        """
        if node is BOTTOM:
            return ("b",)
        if isinstance(node, Atom):
            return ("a", type(node.value).__name__, node.value)
        if isinstance(node, Marker):
            return ("m", node.name)
        by_id = self._by_id
        if isinstance(node, OrValue):
            return ("o", frozenset(by_id[id(d)] for d in node.disjuncts))
        if isinstance(node, PartialSet):
            return ("p", frozenset(by_id[id(e)] for e in node.elements))
        if isinstance(node, CompleteSet):
            return ("c", frozenset(by_id[id(e)] for e in node.elements))
        if isinstance(node, Tuple):
            return ("t", tuple((label, by_id[id(value)])
                               for label, value in node.items()))
        raise CodecError(f"cannot encode {type(node).__name__}")

    def _emit_node(self, node: SSObject) -> int:
        """Write one node frame; children must already hold refs."""
        write = self._writer.write
        by_id = self._by_id
        packed = self._packed
        if isinstance(node, Atom):
            value = node.value
            if isinstance(value, str):
                raw = value.encode("utf-8")
                write(_B_ATOM_STR + _pack_uvarint(len(raw)) + raw)
            elif value is True:
                write(_B_ATOM_TRUE)
            elif value is False:
                write(_B_ATOM_FALSE)
            elif isinstance(value, int):
                zig = value * 2 if value >= 0 else -value * 2 - 1
                write(_B_ATOM_INT + _pack_uvarint(zig))
            else:
                write(_B_ATOM_FLOAT + _FLOAT_STRUCT.pack(value))
        elif isinstance(node, Tuple):
            fields = node.items()
            labels = self._labels
            parts = [_B_TUPLE, _pack_uvarint(len(fields))]
            for label, value in fields:
                encoded = labels.get(label)
                if encoded is None:
                    raw = label.encode("utf-8")
                    encoded = labels[label] = _pack_uvarint(len(raw)) + raw
                parts.append(encoded)
                parts.append(packed[by_id[id(value)]])
            write(b"".join(parts))
        elif isinstance(node, Marker):
            raw = node.name.encode("utf-8")
            write(_B_MARKER + _pack_uvarint(len(raw)) + raw)
        elif isinstance(node, (OrValue, PartialSet, CompleteSet)):
            if isinstance(node, OrValue):
                tag, children = _T_OR, node.disjuncts
            elif isinstance(node, PartialSet):
                tag, children = _T_PSET, node.elements
            else:
                tag, children = _T_CSET, node.elements
            refs = sorted(by_id[id(child)] for child in children)
            write(bytes((tag,)) + _pack_uvarint(len(refs))
                  + b"".join([packed[r] for r in refs]))
        elif node is BOTTOM:
            write(_B_BOTTOM)
        else:
            raise CodecError(f"cannot encode {type(node).__name__}")
        ref = self._count
        self._count = ref + 1
        packed.append(_pack_uvarint(ref))
        return ref

    def _ref(self, obj: SSObject) -> int:
        """Intern ``obj`` into the value table, emitting any frames its
        unseen substructure needs, and return its ref.

        The walk is an explicit post-order worklist: a node is emitted
        only once every child holds a ref, so refs always point
        backwards and the stack depth is bounded by nesting, not by the
        interpreter's recursion limit.
        """
        by_id = self._by_id
        ref = by_id.get(id(obj))
        if ref is not None:
            return ref
        if not isinstance(obj, SSObject):
            raise CodecError(
                f"binary codec takes model objects, got "
                f"{type(obj).__name__}")
        if isinstance(obj, (Atom, Marker)) or obj is BOTTOM:
            # Leaf fast path: no children to schedule, emit directly.
            return self._admit(obj)
        admit = self._admit
        stack = [obj]
        while stack:
            node = stack[-1]
            if id(node) in by_id:
                stack.pop()
                continue
            pending = None
            for child in _node_children(node):
                if id(child) not in by_id:
                    if isinstance(child, (Atom, Marker)):
                        admit(child)  # leaves need no scheduling
                    else:
                        if pending is None:
                            pending = []
                        pending.append(child)
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            admit(node)
        return by_id[id(obj)]

    def _admit(self, node: SSObject) -> int:
        """Emit (or dedup) one node whose children all hold refs."""
        if self._dedup_shapes:
            shape = self._shape_key(node)
            slot = self._by_shape.get(shape)
            if slot is None:
                slot = self._emit_node(node)
                self._by_shape[shape] = slot
        else:
            slot = self._emit_node(node)
        self._by_id[id(node)] = slot
        self._keepalive.append(node)
        return slot

    def ref_of(self, obj: SSObject) -> int:
        """The table ref of an already-encoded (sub)object.

        Raises :class:`CodecError` when the object has not been written
        through this encoder — container formats use this to reference
        subobjects (index entries) after the node stream is closed,
        when emitting new frames would corrupt the framing.
        """
        ref = self._by_id.get(id(obj))
        if ref is None:
            ref = self._by_shape.get(self._try_shape(obj))
        if ref is None:
            raise CodecError(
                "object was never encoded through this encoder")
        return ref

    def _try_shape(self, obj: SSObject) -> tuple:
        try:
            return self._shape_key(obj)
        except (KeyError, CodecError):
            return ("missing",)

    # -- record frames ------------------------------------------------------

    def write_object(self, obj: SSObject) -> int:
        """Write one standalone object record; returns its table ref."""
        ref = self._ref(obj)
        self._writer.write(_B_OBJECT + self._packed[ref])
        return ref

    def write_datum(self, datum: Data) -> None:
        """Write one datum record (marker ref + object ref)."""
        if not isinstance(datum, Data):
            raise CodecError(
                f"write_datum takes Data, got {type(datum).__name__}")
        marker_ref = self._ref(datum.marker)
        object_ref = self._ref(datum.object)
        packed = self._packed
        self._writer.write(_B_DATUM + packed[marker_ref]
                           + packed[object_ref])

    def write_dataset(self, dataset: Iterable[Data]) -> int:
        """Write every datum of a data set followed by ``END``; returns
        the number of data written.

        Iterates the raw element set when given a :class:`DataSet` —
        canonical (sorted) order would recurse through
        ``structural_key`` and costs O(n log n) deep comparisons the
        wire format does not need.
        """
        if isinstance(dataset, DataSet):
            items: Iterable[Data] = dataset._data
        else:
            items = dataset
        count = 0
        for datum in items:
            self.write_datum(datum)
            count += 1
        self.write_end()
        return count

    def write_end(self) -> None:
        """Write an ``END`` frame (closes a dataset section)."""
        self._writer.write(_B_END)

    # -- container-format helpers -------------------------------------------

    def write_uvarint(self, value: int) -> None:
        """Write a raw varint (for container formats framing the codec)."""
        self._writer.write(_pack_uvarint(value))

    def write_uvarint_seq(self, values: Iterable[int]) -> None:
        """Write consecutive varints as one buffered chunk."""
        self._writer.write(b"".join(map(_pack_uvarint, values)))

    def write_ref(self, obj: SSObject) -> None:
        """Write the table ref of an already-encoded object (varint)."""
        self._writer.write(self._packed[self.ref_of(obj)])

    def write_bytes(self, data: bytes) -> None:
        """Write raw bytes (container magics and fixed fields)."""
        self._writer.write(data)

    def write_string(self, text: str) -> None:
        """Write a length-prefixed UTF-8 string."""
        raw = text.encode("utf-8")
        self._writer.write(_pack_uvarint(len(raw)) + raw)

    def flush(self) -> None:
        """Flush buffered bytes to the underlying stream."""
        self._writer.flush()

    def hexdigest(self) -> str:
        """Digest of all bytes written so far (requires ``hasher=``)."""
        return self._writer.hexdigest()


class Decoder:
    """Streaming decoder over a binary file object.

    A single forward pass: node frames fill the value table bottom-up
    (each node's structural hash is forced as it is built, and
    ``intern=True`` canonicalizes it into the intern pool immediately),
    record frames surface objects and data. Malformed input — bad
    magic, unknown tags, forward refs, truncation — raises
    :class:`~repro.core.errors.CodecError`.
    """

    def __init__(self, stream: IO[bytes], *, intern: bool = False,
                 hasher: Any = None, header: bool = True):
        self._reader = _Reader(stream, hasher)
        self._intern = intern
        self._table: list[SSObject] = []
        self._label_cache: dict[bytes, str] = {}
        self._ended = False
        if header:
            magic = self._reader.read_exact(len(MAGIC))
            if magic != MAGIC:
                raise CodecError(
                    f"not a repro binary stream (bad magic {magic!r})")
            version = self._reader.read_uvarint()
            if version != VERSION:
                raise CodecError(
                    f"unsupported binary codec version {version!r} "
                    f"(this build reads version {VERSION})")

    @property
    def ended(self) -> bool:
        """Whether the last ``None`` from :meth:`next_record` came from
        an explicit ``END`` frame rather than plain end of input.

        Container formats that frame a dataset section with ``END``
        check this to tell a complete section from a truncated file
        whose bytes happen to stop at a frame boundary.
        """
        return self._ended

    @property
    def intern(self) -> bool:
        """Whether decoded nodes are canonicalized into the intern pool.

        Writable so container formats that carry the flag in their own
        header (read through this decoder) can set it after parsing the
        header, before the first node frame arrives.
        """
        return self._intern

    @intern.setter
    def intern(self, flag: bool) -> None:
        self._intern = bool(flag)

    # -- the value table ----------------------------------------------------

    def _resolve(self, ref: int) -> SSObject:
        table = self._table
        if ref >= len(table):
            raise CodecError(
                f"invalid back-reference {ref} (only {len(table)} nodes "
                f"defined)")
        return table[ref]

    def node(self, ref: int) -> SSObject:
        """Resolve a table ref (for container formats storing refs)."""
        return self._resolve(ref)

    def _read_refs(self) -> list[SSObject]:
        reader = self._reader
        count = reader.read_uvarint()
        refs = reader.read_uvarint_seq(count)
        table = self._table
        try:
            return [table[ref] for ref in refs]
        except IndexError:
            bad = next(ref for ref in refs if ref >= len(table))
            raise CodecError(
                f"invalid back-reference {bad} (only {len(table)} nodes "
                f"defined)") from None

    def _read_node(self, tag: int) -> None:
        # Tags are dispatched roughly by frequency on real workloads:
        # string atoms and tuples dominate, ⊥ and bools are rare.
        reader = self._reader
        try:
            if tag == _T_ATOM_STR:
                node: SSObject = Atom(self._read_string())
            elif tag == _T_TUPLE:
                count = reader.read_uvarint()
                fields = []
                table = self._table
                read_label = self._read_label
                read_uvarint = reader.read_uvarint
                previous = ""
                normal = True
                try:
                    for _ in range(count):
                        label = read_label()
                        value = table[read_uvarint()]
                        if label <= previous or value is BOTTOM:
                            normal = False
                        fields.append((label, value))
                        previous = label
                except IndexError:
                    raise CodecError(
                        f"invalid back-reference (only {len(table)} "
                        f"nodes defined)") from None
                if normal:
                    # Encoder output: labels strictly increasing (hence
                    # distinct, non-empty) and no ⊥ values — already the
                    # constructor's normal form, so skip re-validation.
                    node = Tuple._from_sorted_fields(tuple(fields))
                else:
                    node = Tuple(fields)
            elif tag == _T_MARKER:
                node = Marker(self._read_string())
            elif tag == _T_ATOM_INT:
                zig = reader.read_uvarint()
                node = Atom(zig // 2 if zig % 2 == 0 else -(zig + 1) // 2)
            elif tag == _T_PSET:
                # Table entries are validated model objects, so the
                # element check of the public constructor is redundant.
                node = PartialSet._from_elements(
                    frozenset(self._read_refs()))
            elif tag == _T_CSET:
                node = CompleteSet._from_elements(
                    frozenset(self._read_refs()))
            elif tag == _T_OR:
                children = self._read_refs()
                flat = frozenset(children)
                if len(flat) >= 2 and not any(
                        isinstance(child, OrValue) for child in flat):
                    node = OrValue._from_disjuncts(flat)
                else:
                    # Degenerate or nested-or frames go through the
                    # validating constructor (raises, or flattens).
                    node = OrValue(children)
            elif tag == _T_ATOM_FLOAT:
                node = Atom(_FLOAT_STRUCT.unpack(reader.read_exact(8))[0])
            elif tag == _T_ATOM_TRUE:
                node = Atom(True)
            elif tag == _T_ATOM_FALSE:
                node = Atom(False)
            elif tag == _T_BOTTOM:
                node = BOTTOM
            else:
                raise CodecError(f"unknown frame tag 0x{tag:02x}")
        except ModelError as exc:
            raise CodecError(f"invalid node in binary stream: {exc}") \
                from exc
        if self._intern:
            # Children come from the table, so they are canonical
            # already — adopt() skips the rebuild walk intern() pays.
            node = _adopt_object(node)
        else:
            # Force the structural hash bottom-up: children are hashed
            # already, so this never recurses more than one level and
            # every later set/dict operation on the node is shallow.
            hash(node)
        self._table.append(node)

    def _read_string(self) -> str:
        raw = self._reader.read_lp_bytes()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in binary stream: {exc}") \
                from exc

    def _read_label(self) -> str:
        """Read a tuple label, sharing one ``str`` per distinct label.

        Labels repeat across almost every tuple frame; the cache skips
        the repeated UTF-8 decode and gives all decoded tuples
        pointer-identical label strings, which speeds up the label
        comparisons ``Tuple`` construction and field lookups do.
        """
        raw = self._reader.read_lp_bytes()
        label = self._label_cache.get(raw)
        if label is None:
            try:
                label = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(
                    f"invalid UTF-8 in binary stream: {exc}") from exc
            self._label_cache[raw] = label
        return label

    # -- record frames ------------------------------------------------------

    def next_record(self) -> tuple[str, Any] | None:
        """Advance to the next record frame.

        Returns ``("object", obj)`` or ``("datum", datum)``; ``None``
        at an ``END`` frame or at a clean end of input.
        """
        reader = self._reader
        self._ended = False
        read_node = self._read_node
        while True:
            # Inline tag fetch: one byte, almost always buffered.
            pos = reader._pos
            chunk = reader._chunk
            if pos < len(chunk):
                tag = chunk[pos]
                reader._pos = pos + 1
            else:
                tag = reader.try_read_byte()
                if tag is None:
                    return None
            if tag < _T_DATUM:  # node frames dominate real streams
                read_node(tag)
                continue
            if tag == _T_DATUM:
                table = self._table
                try:
                    marker = table[reader.read_uvarint()]
                    obj = table[reader.read_uvarint()]
                except IndexError:
                    raise CodecError(
                        f"invalid back-reference (only {len(table)} "
                        f"nodes defined)") from None
                try:
                    return "datum", Data(marker, obj)
                except ModelError as exc:
                    raise CodecError(f"invalid datum: {exc}") from exc
            if tag == _T_END:
                self._ended = True
                return None
            if tag == _T_OBJECT:
                return "object", self._resolve(reader.read_uvarint())
            read_node(tag)  # raises "unknown frame tag"

    def read_object(self) -> SSObject:
        """Read the next record, which must be a standalone object."""
        record = self.next_record()
        if record is None or record[0] != "object":
            raise CodecError("expected an object record")
        return record[1]

    def read_datum(self) -> Data:
        """Read the next record, which must be a datum."""
        record = self.next_record()
        if record is None or record[0] != "datum":
            raise CodecError("expected a datum record")
        return record[1]

    def iter_data(self) -> Iterator[Data]:
        """Yield data until the closing ``END`` frame."""
        while True:
            record = self.next_record()
            if record is None:
                return
            if record[0] != "datum":
                raise CodecError("expected a datum record in data stream")
            yield record[1]

    # -- container-format helpers -------------------------------------------

    def read_uvarint(self) -> int:
        """Read a raw varint written by :meth:`Encoder.write_uvarint`."""
        return self._reader.read_uvarint()

    def read_uvarint_seq(self, count: int) -> list[int]:
        """Read ``count`` varints written by
        :meth:`Encoder.write_uvarint_seq` (or individually)."""
        return self._reader.read_uvarint_seq(count)

    def read_bytes(self, count: int) -> bytes:
        """Read raw bytes written by :meth:`Encoder.write_bytes`."""
        return self._reader.read_exact(count)

    def read_string(self) -> str:
        """Read a string written by :meth:`Encoder.write_string`."""
        return self._read_string()

    def read_label(self) -> str:
        """Read a string written by :meth:`Encoder.write_string`,
        sharing one ``str`` object per distinct value.

        For container formats reading small repetitive vocabularies
        (index paths, signature labels): skips the repeated UTF-8
        decode and returns pointer-identical strings. The wire format
        is identical to :meth:`read_string`.
        """
        return self._read_label()

    def hexdigest(self) -> str:
        """Digest of all bytes consumed so far (requires ``hasher=``)."""
        return self._reader.hexdigest()


# ---------------------------------------------------------------------------
# File-object entry points
# ---------------------------------------------------------------------------

def dump_object(obj: SSObject, stream: IO[bytes]) -> None:
    """Write one object to a binary file object."""
    encoder = Encoder(stream)
    encoder.write_object(obj)
    encoder.flush()


def load_object(stream: IO[bytes], *, intern: bool = False) -> SSObject:
    """Read one object written by :func:`dump_object`."""
    return Decoder(stream, intern=intern).read_object()


def dump_data(datum: Data, stream: IO[bytes]) -> None:
    """Write one datum to a binary file object."""
    encoder = Encoder(stream)
    encoder.write_datum(datum)
    encoder.flush()


def load_data(stream: IO[bytes], *, intern: bool = False) -> Data:
    """Read one datum written by :func:`dump_data`."""
    return Decoder(stream, intern=intern).read_datum()


def dump_dataset(dataset: DataSet | Iterable[Data],
                 stream: IO[bytes]) -> None:
    """Stream a whole data set to a binary file object, one datum at a
    time, sharing one value table across all of them."""
    encoder = Encoder(stream)
    encoder.write_dataset(dataset)
    encoder.flush()


def load_dataset(stream: IO[bytes], *, intern: bool = False) -> DataSet:
    """Read a data set written by :func:`dump_dataset`."""
    decoder = Decoder(stream, intern=intern)
    return DataSet(decoder.iter_data())


# ---------------------------------------------------------------------------
# Bytes-level entry points
# ---------------------------------------------------------------------------

def dumps_object(obj: SSObject) -> bytes:
    """Serialize one object to bytes."""
    buffer = io.BytesIO()
    dump_object(obj, buffer)
    return buffer.getvalue()


def loads_object(payload: bytes, *, intern: bool = False) -> SSObject:
    """Parse bytes produced by :func:`dumps_object`."""
    return load_object(io.BytesIO(payload), intern=intern)


def dumps_data(datum: Data) -> bytes:
    """Serialize one datum to bytes."""
    buffer = io.BytesIO()
    dump_data(datum, buffer)
    return buffer.getvalue()


def loads_data(payload: bytes, *, intern: bool = False) -> Data:
    """Parse bytes produced by :func:`dumps_data`."""
    return load_data(io.BytesIO(payload), intern=intern)


def dumps_dataset(dataset: DataSet | Iterable[Data]) -> bytes:
    """Serialize a data set to bytes."""
    buffer = io.BytesIO()
    dump_dataset(dataset, buffer)
    return buffer.getvalue()


def loads_dataset(payload: bytes, *, intern: bool = False) -> DataSet:
    """Parse bytes produced by :func:`dumps_dataset`."""
    return load_dataset(io.BytesIO(payload), intern=intern)
