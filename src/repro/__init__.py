"""repro — reproduction of Liu & Ling, "A Data Model for Semistructured
Data with Partial and Inconsistent Information" (EDBT 2000).

The package implements the paper's object model (atoms, markers, ``⊥``,
or-values, partial/complete sets, tuples), its key-based algebra
(union / intersection / difference), the ``⊴`` information order, and the
application substrates the paper motivates: BibTeX and web-page mapping,
multi-source merging with conflict tracking, and baselines (OEM, labeled
trees) for comparison.

Quickstart::

    from repro import tup, pset, data, dataset

    s1 = dataset(("B80", tup(type="Article", title="Oracle",
                             author="Bob", year=1980)))
    s2 = dataset(("B82", tup(type="Article", title="Oracle",
                             year=1980, journal="IS")))
    merged = s1.union(s2, key={"type", "title"})

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.core import *  # noqa: F401,F403 — curated re-export surface
from repro.core import __all__ as _core_all

__version__ = "1.0.0"

__all__ = list(_core_all) + ["__version__"]
