"""Perturbation toolkit: inject partiality and inconsistency into any
data set.

The bib/web generators build workloads from scratch; this module instead
*degrades an existing data set* the way real-world copying does, so users
can stress their own pipelines (and so failure-injection tests have a
single, seeded implementation):

* :func:`drop_attributes` — forget attribute values (``⊥``);
* :func:`perturb_atoms` — replace atom values with plausible variants
  (year ±1, string case/initials damage) to manufacture conflicts;
* :func:`open_sets` — demote complete sets to partial sets, optionally
  forgetting elements (the ``"and others"`` effect);
* :func:`fork_source` — produce a perturbed copy with fresh markers, the
  canonical "second source describing the same entities".

All functions are pure (new data sets out, inputs untouched) and
deterministic under their seed.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.core.data import Data, DataSet
from repro.core.errors import WorkloadError
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    Marker,
    PartialSet,
    SSObject,
    Tuple,
)

__all__ = ["drop_attributes", "perturb_atoms", "open_sets",
           "fork_source"]


def _check_rate(rate: float, name: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise WorkloadError(f"{name} must be in [0, 1], got {rate}")


def _map_tuples(dataset: DataSet,
                rewrite: Callable[[Tuple], Tuple]) -> DataSet:
    out = []
    for datum in dataset:
        if isinstance(datum.object, Tuple):
            out.append(Data(datum.marker, rewrite(datum.object)))
        else:
            out.append(datum)
    return DataSet(out)


def drop_attributes(dataset: DataSet, rate: float, *, seed: int = 0,
                    protect: frozenset[str] = frozenset(),
                    ) -> DataSet:
    """Forget each non-protected attribute value with probability
    ``rate`` (the value becomes ``⊥``, i.e. the attribute disappears)."""
    _check_rate(rate, "rate")
    rng = random.Random(seed)

    def rewrite(obj: Tuple) -> Tuple:
        fields = {}
        for label, value in obj.items():
            if label not in protect and rng.random() < rate:
                continue
            fields[label] = value
        return Tuple(fields)

    return _map_tuples(dataset, rewrite)


def _damage_atom(atom: Atom, rng: random.Random) -> Atom:
    value = atom.value
    if isinstance(value, bool):
        return Atom(not value)
    if isinstance(value, int):
        return Atom(value + rng.choice((-1, 1)))
    if isinstance(value, float):
        return Atom(value + rng.choice((-0.5, 0.5)))
    if not value:
        return Atom("?")
    words = value.split()
    if len(words) >= 2 and rng.random() < 0.5:
        # First word to initial: "Bob King" -> "B. King".
        return Atom(" ".join([f"{words[0][0]}."] + words[1:]))
    return Atom(value.swapcase())


def perturb_atoms(dataset: DataSet, rate: float, *, seed: int = 0,
                  protect: frozenset[str] = frozenset()) -> DataSet:
    """Replace top-level atomic attribute values with plausible variants
    with probability ``rate`` — years drift by one, names collapse to
    initials, strings change case. Key attributes should be protected
    or the damaged copies will no longer be compatible."""
    _check_rate(rate, "rate")
    rng = random.Random(seed)

    def rewrite(obj: Tuple) -> Tuple:
        fields = {}
        for label, value in obj.items():
            if label not in protect and isinstance(value, Atom) \
                    and rng.random() < rate:
                fields[label] = _damage_atom(value, rng)
            else:
                fields[label] = value
        return Tuple(fields)

    return _map_tuples(dataset, rewrite)


def open_sets(dataset: DataSet, rate: float, *, seed: int = 0,
              forget: float = 0.5) -> DataSet:
    """Demote complete sets to partial sets with probability ``rate``.

    Each element of a demoted set is then *forgotten* with probability
    ``forget`` (at least one element is always kept when the set was
    non-empty) — exactly what "Bob and others" does to an author list.
    """
    _check_rate(rate, "rate")
    _check_rate(forget, "forget")
    rng = random.Random(seed)

    def demote(value: SSObject) -> SSObject:
        if not isinstance(value, CompleteSet) or rng.random() >= rate:
            return value
        elements = list(value)
        kept = [element for element in elements
                if rng.random() >= forget]
        if not kept and elements:
            kept = [rng.choice(elements)]
        return PartialSet(kept)

    def rewrite(obj: Tuple) -> Tuple:
        return Tuple((label, demote(value))
                     for label, value in obj.items())

    return _map_tuples(dataset, rewrite)


def fork_source(dataset: DataSet, *, seed: int = 0,
                marker_suffix: str = "-copy",
                null_rate: float = 0.2,
                conflict_rate: float = 0.2,
                open_rate: float = 0.3,
                protect: frozenset[str] = frozenset(),
                ) -> DataSet:
    """A perturbed copy of ``dataset`` under fresh markers.

    The result simulates an independently-maintained second source: same
    entities, renamed markers, some values forgotten, some damaged, some
    complete sets opened. ``protect`` should contain the key attributes.
    """
    renamed = []
    for datum in dataset:
        if isinstance(datum.marker, Marker):
            fresh: SSObject = Marker(datum.marker.name + marker_suffix)
        else:
            fresh = datum.marker
        renamed.append(Data(fresh, datum.object))
    forked = DataSet(renamed)
    forked = drop_attributes(forked, null_rate, seed=seed,
                             protect=protect)
    forked = perturb_atoms(forked, conflict_rate, seed=seed + 1,
                           protect=protect)
    return open_sets(forked, open_rate, seed=seed + 2)
