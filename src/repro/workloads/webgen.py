"""Synthetic web-site workloads.

Generates small linked HTML sites in the style of the paper's Example 2 —
a home page with heading sections and link lists, plus the linked pages —
to exercise the web mapping and the expand operation at scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import WorkloadError

__all__ = ["WebWorkloadSpec", "generate_site"]

_SECTION_NAMES = ["People", "Programs", "Research", "Courses", "News",
                  "Events", "Alumni", "Resources"]
_ITEM_NAMES = ["Faculty", "Staff", "Students", "Visitors", "Postdocs",
               "Admin", "Systems", "Theory", "Data", "AI"]


@dataclass(frozen=True)
class WebWorkloadSpec:
    """Parameters for one synthetic site."""

    pages: int
    sections_per_page: int = 3
    items_per_list: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.pages < 1:
            raise WorkloadError("a site needs at least one page")
        if self.sections_per_page < 1 or self.items_per_list < 1:
            raise WorkloadError("sections and items must be positive")


def generate_site(spec: WebWorkloadSpec) -> dict[str, str]:
    """Generate ``url → html`` for a linked site, deterministically.

    Page 0 is the home page; every other page is reachable from some
    page's link list, so expansion from the home page touches the whole
    site for small fan-outs.
    """
    rng = random.Random(spec.seed)
    urls = [f"page{index}.html" for index in range(spec.pages)]
    site: dict[str, str] = {}
    for index, url in enumerate(urls):
        body: list[str] = []
        for section_number in range(spec.sections_per_page):
            name = rng.choice(_SECTION_NAMES) + f" {section_number}"
            if rng.random() < 0.4 and spec.pages > 1:
                target = urls[rng.randrange(spec.pages)]
                body.append(f'<h2><a href="{target}">{name}</a></h2>')
                continue
            body.append(f"<h2>{name}</h2>")
            items = []
            for item_number in range(spec.items_per_list):
                target = urls[rng.randrange(spec.pages)]
                label = (rng.choice(_ITEM_NAMES)
                         + f" {section_number}.{item_number}")
                items.append(f'<li><a href="{target}">{label}</a></li>')
            body.append("<ul>" + "".join(items) + "</ul>")
        site[url] = (
            f"<html><head><title>Page {index}</title></head>"
            f"<body>{''.join(body)}</body></html>"
        )
    return site
