"""Seeded synthetic workload generators for the scaled experiments.

* :mod:`repro.workloads.bibgen` — multi-source BibTeX-style databases
  with controlled overlap, nulls, conflicts and partial author lists
  (experiments S1-S3);
* :mod:`repro.workloads.nestedgen` — nested publication documents with
  partiality at interior *and* leaf positions, for the multi-level
  shredding benchmarks;
* :mod:`repro.workloads.webgen` — linked HTML sites in the Example 2
  style, for web-mapping and expand benchmarks.
"""

from repro.workloads.bibgen import (
    BibWorkload,
    BibWorkloadSpec,
    GroundTruthEntry,
    generate_workload,
)
from repro.workloads.nestedgen import (
    NestedWorkload,
    NestedWorkloadSpec,
    generate_nested_workload,
)
from repro.workloads.perturb import (
    drop_attributes,
    fork_source,
    open_sets,
    perturb_atoms,
)
from repro.workloads.webgen import WebWorkloadSpec, generate_site

__all__ = [
    "BibWorkloadSpec", "BibWorkload", "GroundTruthEntry",
    "generate_workload",
    "NestedWorkloadSpec", "NestedWorkload", "generate_nested_workload",
    "WebWorkloadSpec", "generate_site",
    "drop_attributes", "perturb_atoms", "open_sets", "fork_source",
]
