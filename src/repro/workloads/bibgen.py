"""Synthetic bibliographic workloads.

The paper motivates its algebra with merging personal BibTeX databases
but reports no experiments; these generators supply the missing workload,
deterministic under a seed so every benchmark run is reproducible.

A workload starts from a *ground-truth universe* of publications. Each
source receives a subset (controlled by ``overlap``) and a perturbed copy
of every entry it holds:

* ``null_rate`` — a non-key field is dropped (partial information);
* ``conflict_rate`` — a non-key field is perturbed: years shift by one,
  author first names collapse to initials, venues get abbreviated
  (inconsistent information);
* ``partial_author_rate`` — the author list is truncated to its first
  author "and others" (open-world sets).

Because the ground truth is known, experiments can verify counts: how
many entries should merge, how many conflicts ``∪K`` must flag, and what
the intersection/difference sizes should be.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field

from repro.core.builder import atom
from repro.core.data import Data, DataSet
from repro.core.errors import WorkloadError
from repro.core.objects import (
    CompleteSet,
    Marker,
    PartialSet,
    SSObject,
    Tuple,
)

__all__ = ["BibWorkloadSpec", "GroundTruthEntry", "BibWorkload",
           "generate_workload"]

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Henri",
    "Irene", "Jack", "Karin", "Louis", "Mona", "Nils", "Olga", "Peter",
    "Qiang", "Rosa", "Sven", "Tara",
]
_LAST_NAMES = [
    "Abiteboul", "Buneman", "Chen", "Davidson", "Eisner", "Fernandez",
    "Garcia", "Hull", "Imielinski", "Jagadish", "Khoshafian", "Liu",
    "Mendelzon", "Naqvi", "Ozsu", "Papakonstantinou", "Quass", "Ramesh",
    "Suciu", "Ullman",
]
_TOPICS = [
    "Query Optimization", "Semistructured Data", "Deductive Databases",
    "Object Identity", "View Maintenance", "Schema Integration",
    "Partial Information", "Web Queries", "Datalog Evaluation",
    "Complex Objects",
]
_JOURNALS = ["TODS", "Information Systems", "JLP", "VLDB Journal",
             "TKDE"]
_CONFERENCES = ["SIGMOD", "VLDB", "PODS", "EDBT", "ICDE"]

_ABBREVIATIONS = {
    "Information Systems": "IS",
    "VLDB Journal": "VLDBJ",
    "SIGMOD": "SIGMOD Conf.",
    "EDBT": "EDBT Conf.",
}


@dataclass(frozen=True)
class BibWorkloadSpec:
    """Parameters of one synthetic workload (see module docs)."""

    entries: int
    sources: int = 2
    overlap: float = 0.3
    null_rate: float = 0.2
    conflict_rate: float = 0.2
    partial_author_rate: float = 0.3
    seed: int = 0

    def __post_init__(self):
        if self.entries < 0:
            raise WorkloadError("entries must be non-negative")
        if self.sources < 1:
            raise WorkloadError("need at least one source")
        for name in ("overlap", "null_rate", "conflict_rate",
                     "partial_author_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got "
                                    f"{value}")


@dataclass(frozen=True)
class GroundTruthEntry:
    """One publication in the ground-truth universe."""

    uid: int
    entry_type: str          # "Article" or "InProc"
    title: str
    authors: tuple[tuple[str, str], ...]   # (first, last)
    year: int
    venue_field: str         # "jnl" or "conf"
    venue: str
    pages: str
    holders: tuple[int, ...]  # indices of sources holding this entry


@dataclass
class BibWorkload:
    """A generated workload: sources plus the ground truth behind them."""

    spec: BibWorkloadSpec
    universe: list[GroundTruthEntry]
    sources: list[DataSet]
    #: uids of entries held by more than one source.
    shared_uids: frozenset[int] = dataclass_field(default=frozenset())

    @property
    def key(self) -> frozenset[str]:
        """The key that identifies entries in this workload."""
        return frozenset({"type", "title"})

    def expected_result_size(self) -> int:
        """Entries the full union must produce: one per universe entry
        held by at least one source (entries of different types never
        collide because titles are unique)."""
        return sum(1 for entry in self.universe if entry.holders)


def _make_universe(spec: BibWorkloadSpec,
                   rng: random.Random) -> list[GroundTruthEntry]:
    universe: list[GroundTruthEntry] = []
    for uid in range(spec.entries):
        is_article = rng.random() < 0.5
        author_count = rng.randint(1, 4)
        authors = tuple(
            (rng.choice(_FIRST_NAMES), rng.choice(_LAST_NAMES))
            for _ in range(author_count)
        )
        # Titles are unique by construction: the uid is embedded.
        title = f"{rng.choice(_TOPICS)} Revisited {uid:05d}"
        holders = _assign_holders(spec, rng)
        universe.append(GroundTruthEntry(
            uid=uid,
            entry_type="Article" if is_article else "InProc",
            title=title,
            authors=authors,
            year=rng.randint(1975, 1999),
            venue_field="jnl" if is_article else "conf",
            venue=rng.choice(_JOURNALS if is_article else _CONFERENCES),
            # Decoded form (en dash): the model stores text as
            # latex_to_text leaves it, so bib round trips are stable.
            pages=f"{rng.randint(1, 400)}–{rng.randint(401, 800)}",
            holders=holders,
        ))
    return universe


def _assign_holders(spec: BibWorkloadSpec,
                    rng: random.Random) -> tuple[int, ...]:
    if spec.sources == 1:
        return (0,)
    if rng.random() < spec.overlap:
        count = rng.randint(2, spec.sources)
        return tuple(sorted(rng.sample(range(spec.sources), count)))
    return (rng.randrange(spec.sources),)


def _author_object(entry: GroundTruthEntry, rng: random.Random,
                   spec: BibWorkloadSpec) -> SSObject:
    def render(first: str, last: str) -> str:
        if rng.random() < spec.conflict_rate:
            return f"{first[0]}. {last}"       # initials variant
        return f"{first} {last}"

    if len(entry.authors) > 1 and rng.random() < spec.partial_author_rate:
        first, last = entry.authors[0]
        return PartialSet([atom(render(first, last))])
    return CompleteSet(
        atom(render(first, last)) for first, last in entry.authors)


def _entry_datum(entry: GroundTruthEntry, source_index: int,
                 spec: BibWorkloadSpec, rng: random.Random) -> Data:
    fields: dict[str, SSObject] = {
        "type": atom(entry.entry_type),
        "title": atom(entry.title),
    }
    fields["author"] = _author_object(entry, rng, spec)

    year = entry.year
    if rng.random() < spec.conflict_rate:
        year += rng.choice((-1, 1))
    if rng.random() >= spec.null_rate:
        fields["year"] = atom(year)

    venue = entry.venue
    if rng.random() < spec.conflict_rate:
        venue = _ABBREVIATIONS.get(venue, venue)
    if rng.random() >= spec.null_rate:
        fields[entry.venue_field] = atom(venue)

    if rng.random() >= spec.null_rate:
        fields["pages"] = atom(entry.pages)

    marker = Marker(f"s{source_index}e{entry.uid}")
    return Data(marker, Tuple(fields))


def generate_workload(spec: BibWorkloadSpec) -> BibWorkload:
    """Generate a workload deterministically from its spec."""
    rng = random.Random(spec.seed)
    universe = _make_universe(spec, rng)
    source_data: list[list[Data]] = [[] for _ in range(spec.sources)]
    for entry in universe:
        for source_index in entry.holders:
            source_data[source_index].append(
                _entry_datum(entry, source_index, spec, rng))
    shared = frozenset(
        entry.uid for entry in universe if len(entry.holders) > 1)
    return BibWorkload(
        spec=spec,
        universe=universe,
        sources=[DataSet(data) for data in source_data],
        shared_uids=shared,
    )
