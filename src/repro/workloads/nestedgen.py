"""Synthetic nested-document workloads.

The bibliographic generator (:mod:`repro.workloads.bibgen`) keeps every
attribute at the top level; this generator supplies the workload the
multi-level shredder is for: documents whose interesting values live
2–4 tuple-levels deep (``author.name.last``, ``author.affil.since``),
with partial and inconsistent information at *interior* positions as
well as leaves.

Each entry is a publication-like document::

    {type, title, year,
     author: {name:  {first, last},
              affil: {inst, city, since}}}

Rates (all deterministic under the seed) inject the model's partiality
at every level:

* ``null_rate`` — a leaf is dropped (partial information);
* ``or_rate`` — a leaf becomes an or-value of two candidates
  (inconsistent information, the maybe sidecar);
* ``bottom_rate`` — a leaf becomes ``{⊥}∂`` (known-unknown);
* ``interior_or_rate`` — ``author.name`` becomes an or-value of two
  structurally different tuples: the whole subtree demotes to per-row
  evaluation (the shredder keeps it as an irregular interior entry);
* ``opaque_rate`` — ``author`` is wrapped in a complete set: paths
  below it can only be answered per-row (opaque entry);
* ``loose_rate`` — the entry is a bare atom, not a tuple at all: the
  row falls to the store residue.

The defaults keep the irregular interiors rare (a few percent), so a
built :class:`~repro.store.ColumnStore` answers nested-path queries
almost entirely from path columns — the regime the ``bench_nested``
speedup floors are measured in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.builder import atom, bottom, cset, orv, pset
from repro.core.data import Data, DataSet
from repro.core.errors import WorkloadError
from repro.core.objects import Marker, SSObject, Tuple

__all__ = ["NestedWorkloadSpec", "NestedWorkload",
           "generate_nested_workload"]

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace",
    "Henri", "Irene", "Jack", "Karin", "Louis", "Mona", "Nils",
]
_LAST_NAMES = [
    "Abiteboul", "Buneman", "Chen", "Davidson", "Eisner", "Fernandez",
    "Garcia", "Hull", "Imielinski", "Jagadish", "Liu", "Mendelzon",
]
_INSTITUTES = [
    "Oxford University", "INRIA", "Stanford University", "TU Wien",
    "University of Toronto", "ETH Zurich", "Bell Labs", "IBM Research",
]
_CITIES = ["Oxford", "Paris", "Stanford", "Vienna", "Toronto",
           "Zurich", "Murray Hill", "San Jose"]
_TOPICS = [
    "Query Optimization", "Semistructured Data", "Partial Information",
    "Schema Integration", "Object Identity", "Web Queries",
]


@dataclass(frozen=True)
class NestedWorkloadSpec:
    """Parameters of one nested workload (see module docs)."""

    entries: int
    null_rate: float = 0.10
    or_rate: float = 0.10
    bottom_rate: float = 0.04
    interior_or_rate: float = 0.02
    opaque_rate: float = 0.02
    loose_rate: float = 0.01
    seed: int = 0

    def __post_init__(self):
        if self.entries < 0:
            raise WorkloadError("entries must be non-negative")
        for name in ("null_rate", "or_rate", "bottom_rate",
                     "interior_or_rate", "opaque_rate", "loose_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got "
                                    f"{value}")


@dataclass
class NestedWorkload:
    """A generated workload plus its irregularity tally."""

    spec: NestedWorkloadSpec
    dataset: DataSet
    #: Rows carrying an irregular interior, an opaque wrapper or a
    #: loose (non-tuple) top — the rows nested-path queries must still
    #: answer per-row.
    irregular_rows: int = 0


def _leaf(rng: random.Random, spec: NestedWorkloadSpec,
          pool: list) -> SSObject | None:
    """One leaf value, or ``None`` when the field is dropped."""
    roll = rng.random()
    if roll < spec.null_rate:
        return None
    roll -= spec.null_rate
    if roll < spec.bottom_rate:
        return pset(bottom)
    roll -= spec.bottom_rate
    if roll < spec.or_rate:
        first, second = rng.sample(pool, 2)
        return orv(first, second)
    return atom(rng.choice(pool))


def _tuple_of(fields: dict[str, SSObject | None]) -> Tuple:
    return Tuple({label: value for label, value in fields.items()
                  if value is not None})


def _author(rng: random.Random, spec: NestedWorkloadSpec) -> SSObject:
    name = _tuple_of({
        "first": _leaf(rng, spec, _FIRST_NAMES),
        "last": _leaf(rng, spec, _LAST_NAMES),
    })
    affil = _tuple_of({
        "inst": _leaf(rng, spec, _INSTITUTES),
        "city": _leaf(rng, spec, _CITIES),
        "since": _leaf(rng, spec, list(range(1970, 2000))),
    })
    if rng.random() < spec.interior_or_rate:
        variant = Tuple({"last": atom(rng.choice(_LAST_NAMES))})
        name = orv(name, variant)
    author = _tuple_of({"name": name, "affil": affil})
    if rng.random() < spec.opaque_rate:
        return cset(author)
    return author


def _entry(uid: int, rng: random.Random,
           spec: NestedWorkloadSpec) -> tuple[Data, bool]:
    if rng.random() < spec.loose_rate:
        return Data(Marker(f"n{uid}"), atom(f"loose {uid}")), True
    author = _author(rng, spec)
    irregular = not isinstance(author, Tuple) or any(
        not isinstance(value, Tuple) for _, value in author.items())
    fields = {
        "type": atom(rng.choice(("Article", "InProc"))),
        "title": atom(f"{rng.choice(_TOPICS)} {uid:05d}"),
        "author": author,
    }
    year = _leaf(rng, spec, list(range(1975, 2000)))
    if year is not None:
        fields["year"] = year
    return Data(Marker(f"n{uid}"), Tuple(fields)), irregular


def generate_nested_workload(spec: NestedWorkloadSpec) -> NestedWorkload:
    """Generate a nested workload deterministically from its spec."""
    rng = random.Random(spec.seed)
    data = []
    irregular = 0
    for uid in range(spec.entries):
        datum, is_irregular = _entry(uid, rng, spec)
        data.append(datum)
        irregular += is_irregular
    return NestedWorkload(spec=spec, dataset=DataSet(data),
                          irregular_rows=irregular)
