"""⊥/or-value-aware aggregation over partial data.

Aggregates (``count``, ``sum``, ``min``, ``max``, ``collect``) follow
the paper's reading of partial information: an or-value means *exactly
one* of its disjuncts holds, a ⊥ disjunct means "or no value at all",
and set members all hold simultaneously. An aggregate therefore has a
*set of possible outcomes* — one per resolution of the or-values — and
this module never collapses that set into a silently wrong scalar:

* one possible outcome → a plain Python number (or ``None``);
* a few possible outcomes → an :class:`~repro.core.objects.OrValue`
  of the alternatives (with a ⊥ disjunct when "no value" is possible);
* too many to enumerate (past :data:`OR_CAP`) → a :class:`Bounds`
  ``[lo, hi]`` interval covering every possible numeric outcome.

``collect`` is the exception: it returns every value the path can
reach under *some* resolution (the spread semantics of
:func:`~repro.query.paths.evaluate_path`), which is already an exact
description of the possibilities.

The same accumulator runs three ways and must agree exactly:

* :func:`aggregate_rows` — the per-row definitional oracle
  (``naive=True``);
* :func:`aggregate_columnar` — the vectorized kernel over a
  :class:`~repro.store.columnar.ColumnStore`: scalar rows fold through
  flat primitive arrays (:meth:`Column.numeric_stats`, popcounts,
  eq-index buckets) and only irregular/residue rows fall back to the
  per-row resolver;
* the parallel partial-aggregate pushdown
  (:meth:`~repro.query.parallel.ParallelExecutor.aggregate`): each
  shard returns its accumulators as a :meth:`Accumulator.payload`,
  and the parent merges them.

Agreement across all three holds because an accumulator is a *bag of
contributions* combined by a deterministic, order-independent fold:
exact contributions commute, and uncertain contributions are sorted
before the possible-outcome set is enumerated. (Float sums are exact
only up to float associativity — integer data, the common case, is
bit-exact.)

Grouped aggregation (:func:`group_aggregate_rows` /
:func:`group_aggregate_columnar`) keeps the overlapping-groups
semantics of ``Query.group_by``: set-valued keys place a row in every
member's group *definitely*, while or-valued keys place it in each
disjunct's group *uncertainly* — the row's contributions to such a
group gain an "absent" alternative, so the group's ``count`` becomes a
``[lo, hi]`` and its ``sum`` an or-value/bounds. Rows whose key path
reaches nothing group under ⊥.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.intern import is_interned as _is_interned
from repro.core.intern import on_clear as _on_clear
from repro.core.data import Data
from repro.core.errors import QueryError
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.core.order import sort_objects, structural_key
from repro.query.paths import evaluate_path, parse_path

__all__ = [
    "AggregateSpec", "Bounds", "Count", "Sum", "Min", "Max", "Collect",
    "Accumulator", "path_alternatives", "aggregate_rows",
    "aggregate_columnar", "group_aggregate_rows",
    "group_aggregate_columnar", "partial_aggregate_columnar",
    "partial_group_columnar", "merge_grouped", "finish_grouped",
    "grouped_payload", "grouped_from_payload",
]

#: Alternatives tracked per row before degrading to interval bounds.
_ALT_CAP = 24

#: Possible aggregate outcomes enumerated before collapsing to Bounds.
OR_CAP = 8

_AGG_KINDS = ("count", "sum", "min", "max", "collect")


@dataclass(frozen=True)
class Bounds:
    """A ``[lo, hi]`` interval of possible aggregate outcomes.

    Returned when partial inputs make the exact outcome unknowable (or
    too many alternatives to enumerate): the true value lies somewhere
    in the closed interval. ``lo == hi`` never happens — that collapses
    to the plain number.
    """

    lo: float
    hi: float

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"

    def __contains__(self, value: object) -> bool:
        return (isinstance(value, (int, float))
                and self.lo <= value <= self.hi)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate operation: a kind plus the aggregated path.

    ``path`` is ``None`` only for ``count(*)`` (count matching rows).
    """

    kind: str
    path: str | None = None

    def __post_init__(self):
        if self.kind not in _AGG_KINDS:
            raise QueryError(f"unknown aggregate {self.kind!r}")
        if self.path is None and self.kind != "count":
            raise QueryError(f"{self.kind}() needs a path")

    @property
    def steps(self) -> tuple[str, ...] | None:
        return None if self.path is None else parse_path(self.path)

    def label(self) -> str:
        return f"{self.kind}({self.path if self.path is not None else '*'})"


def Count(path: str | None = None) -> AggregateSpec:
    """Count rows where the path reaches a value (``count(*)``: all)."""
    return AggregateSpec("count", path)


def Sum(path: str) -> AggregateSpec:
    """Sum of the numeric values the path reaches (set semantics)."""
    return AggregateSpec("sum", path)


def Min(path: str) -> AggregateSpec:
    """Smallest numeric value the path reaches."""
    return AggregateSpec("min", path)


def Max(path: str) -> AggregateSpec:
    """Largest numeric value the path reaches."""
    return AggregateSpec("max", path)


def Collect(path: str) -> AggregateSpec:
    """Every value the path can reach, in canonical order."""
    return AggregateSpec("collect", path)


# -- possible-value resolution -------------------------------------------------
#
# ``path_alternatives`` is the semantic core shared by every execution
# strategy (and by the hash join's key extraction): the possible *sets
# of values* a row contributes at a path, one alternative per
# resolution of its or-values. Alternatives are canonical — each is a
# structurally sorted, deduplicated tuple (reached values are sets, so
# an alternative where two branches resolve to the same value holds it
# once) — and the alternative list itself is sorted and deduplicated.
# ``None`` means the fan-out exceeded _ALT_CAP and callers must degrade
# to interval bounds over the spread (union-of-possible) values.

_ALT_MEMO: dict[tuple[int, tuple[str, ...]], object] = {}
_on_clear(_ALT_MEMO.clear)

_EMPTY = ((),)


def _dedup_alts(alts: Iterable[tuple]) -> tuple[tuple, ...] | None:
    seen = {}
    for alt in alts:
        seen.setdefault(alt, None)
        if len(seen) > _ALT_CAP:
            return None
    return tuple(sorted(seen, key=lambda alt: tuple(map(structural_key,
                                                        alt))))


def _merge_alt(left: tuple, right: tuple) -> tuple:
    if not left:
        return right
    if not right:
        return left
    merged = set(left)
    merged.update(right)
    return tuple(sort_objects(merged))


def _alts_for(value: SSObject, steps: tuple[str, ...]):
    if isinstance(value, OrValue):
        # Exactly one disjunct holds: alternatives union.
        collected: list[tuple] = []
        for disjunct in value:
            sub = _alts_for(disjunct, steps)
            if sub is None:
                return None
            collected.extend(sub)
        return _dedup_alts(collected)
    if isinstance(value, (PartialSet, CompleteSet)):
        # Every member holds: cartesian combination of member choices.
        combined: tuple[tuple, ...] = _EMPTY
        for member in value:
            sub = _alts_for(member, steps)
            if sub is None:
                return None
            if sub == _EMPTY:
                continue
            product = [_merge_alt(left, right)
                       for left in combined for right in sub]
            combined = _dedup_alts(product)
            if combined is None:
                return None
        return combined
    if steps:
        if isinstance(value, Tuple):
            return _alts_for(value.get(steps[0]), steps[1:])
        return _EMPTY  # a leaf mid-path reaches nothing
    if value is BOTTOM:
        return _EMPTY
    return ((value,),)


def path_alternatives(obj: SSObject, steps: Sequence[str]):
    """Possible value-tuples ``obj`` contributes at ``steps``.

    Returns a sorted tuple of alternatives (each a canonical tuple of
    values; ``()`` is the "no value" alternative) or ``None`` when the
    or-value fan-out exceeds the cap. Memoized identity-keyed for
    interned objects — the memo is registered with the interning pool
    and cleared with it.
    """
    steps = tuple(steps)
    if _is_interned(obj):
        key = (id(obj), steps)
        cached = _ALT_MEMO.get(key)
        if cached is None:
            cached = _ALT_MEMO[key] = (_alts_for(obj, steps),)
        return cached[0]
    return _alts_for(obj, steps)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numeric_leaves(alt: tuple) -> list:
    return [value.value for value in alt
            if type(value) is Atom and _is_number(value.value)]


def _none_last_value(value) -> tuple:
    return (value is None, 0 if value is None else value)


def _none_last_key(alt: tuple) -> tuple:
    return tuple(_none_last_value(value) for value in alt)


# -- the mergeable accumulator -------------------------------------------------


class Accumulator:
    """One aggregate's partial state — mergeable across shards.

    Contributions accumulate into three commutative buckets: an exact
    part (plain numbers / a definite count / collected values), a list
    of per-row *alternative* contributions (the or-value cases), and a
    list of coarse ``(lo, hi)`` ranges (rows past the alternative cap).
    :meth:`finish` combines them deterministically — the alternative
    list is sorted before enumeration — so a merge of shard
    accumulators finishes to exactly the sequential result.
    """

    __slots__ = ("kind", "lo_count", "hi_count", "exact", "best",
                 "alts", "ranges", "values")

    def __init__(self, kind: str):
        self.kind = kind
        self.lo_count = 0
        self.hi_count = 0
        self.exact: float = 0
        self.best = None
        self.alts: list[tuple] = []
        self.ranges: list[tuple] = []
        self.values: set[SSObject] = set()

    # -- contribution intake ---------------------------------------------------

    def add_membership(self, definite: bool) -> None:
        """A ``count(*)`` row: definitely or maybe in the selection."""
        if definite:
            self.lo_count += 1
        self.hi_count += 1

    def add_row(self, alternatives: tuple[tuple, ...]) -> None:
        """Fold one row's value alternatives (see
        :func:`path_alternatives`)."""
        kind = self.kind
        if kind == "collect":
            for alt in alternatives:
                self.values.update(alt)
            return
        if kind == "count":
            reached = [bool(alt) for alt in alternatives]
            if any(reached):
                self.hi_count += 1
                if all(reached):
                    self.lo_count += 1
            return
        if kind == "sum":
            sums = sorted({sum(_numeric_leaves(alt)) for alt in alternatives})
            if len(sums) == 1:
                self.exact += sums[0]
            elif sums:
                self.alts.append(tuple(sums))
            return
        # min / max
        pick = min if kind == "min" else max
        bests = {pick(values) if (values := _numeric_leaves(alt)) else None
                 for alt in alternatives}
        if len(bests) == 1:
            self._merge_best(bests.pop())
        elif bests:
            self.alts.append(tuple(sorted(bests, key=_none_last_value)))

    def add_exploded(self, possible: Iterable[SSObject]) -> None:
        """A row whose alternative fan-out exceeded the cap: fold the
        coarsest sound contribution from its spread possible values."""
        possible = list(possible)
        kind = self.kind
        if kind == "collect":
            self.values.update(possible)
            return
        if kind == "count":
            if possible:
                self.hi_count += 1
            return
        numbers = [value.value for value in possible
                   if type(value) is Atom and _is_number(value.value)]
        if not numbers:
            return
        if kind == "sum":
            lo = sum(n for n in numbers if n < 0)
            hi = sum(n for n in numbers if n > 0)
            self.ranges.append((min(lo, 0), max(hi, 0)))
        else:
            self.ranges.append((min(numbers), max(numbers)))

    # -- vectorized intake (the columnar kernel's fast paths) -----------------

    def add_definite_count(self, rows: int) -> None:
        self.lo_count += rows
        self.hi_count += rows

    def add_numeric_stats(self, total, minimum, maximum) -> None:
        if self.kind == "sum":
            self.exact += total
        elif minimum is not None:
            self._merge_best(minimum if self.kind == "min" else maximum)

    def add_values(self, values: Iterable[SSObject]) -> None:
        self.values.update(values)

    def _merge_best(self, value) -> None:
        if value is None:
            return
        if self.best is None:
            self.best = value
        else:
            self.best = (min if self.kind == "min" else max)(self.best,
                                                             value)

    # -- merge / finish --------------------------------------------------------

    def merge(self, other: "Accumulator") -> None:
        if other.kind != self.kind:
            raise QueryError("cannot merge accumulators of different kinds")
        self.lo_count += other.lo_count
        self.hi_count += other.hi_count
        self.exact += other.exact
        self._merge_best(other.best)
        self.alts.extend(other.alts)
        self.ranges.extend(other.ranges)
        self.values.update(other.values)

    def finish(self):
        kind = self.kind
        if kind == "collect":
            return tuple(sort_objects(self.values))
        if kind == "count":
            if self.lo_count == self.hi_count:
                return self.lo_count
            return Bounds(self.lo_count, self.hi_count)
        if kind == "sum":
            return self._finish_sum()
        return self._finish_minmax()

    def _finish_sum(self):
        base = self.exact
        if not self.alts and not self.ranges:
            return base
        alts = sorted(self.alts)
        lo = base + sum(alt[0] for alt in alts) + sum(r[0]
                                                      for r in self.ranges)
        hi = base + sum(alt[-1] for alt in alts) + sum(r[1]
                                                       for r in self.ranges)
        if not self.ranges:
            possible = {0}
            for alt in alts:
                possible = {s + a for s in possible for a in alt}
                if len(possible) > OR_CAP:
                    break
            else:
                possible = sorted(base + s for s in possible)
                if len(possible) == 1:
                    return possible[0]
                return OrValue.of(*(Atom(v) for v in possible))
        if lo == hi:
            return lo
        return Bounds(lo, hi)

    def _finish_minmax(self):
        pick = min if self.kind == "min" else max
        if not self.alts and not self.ranges:
            return self.best
        candidates = [v for alt in self.alts for v in alt if v is not None]
        candidates.extend(v for r in self.ranges for v in r)
        if self.best is not None:
            candidates.append(self.best)
        if not self.ranges:
            possible = {self.best}
            for alt in sorted(self.alts, key=_none_last_key):
                possible = {self._pair(pick, s, a)
                            for s in possible for a in alt}
                if len(possible) > OR_CAP:
                    break
            else:
                if len(possible) == 1:
                    return possible.pop()
                numbers = sorted(v for v in possible if v is not None)
                atoms = [Atom(v) for v in numbers]
                if None in possible:
                    return OrValue.of(*atoms, BOTTOM)
                return OrValue.of(*atoms)
        # Past the cap: the coarsest sound interval over every numeric
        # candidate (a simultaneously possible "no value" outcome is
        # subsumed by the interval — documented, never a wrong scalar).
        if not candidates:
            return None
        lo, hi = min(candidates), max(candidates)
        if lo == hi:
            return lo
        return Bounds(lo, hi)

    @staticmethod
    def _pair(pick, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return pick(left, right)

    # -- wire format (parallel partial-aggregate pushdown) --------------------

    def payload(self) -> tuple:
        """Pure-python/bytes state, safe to pickle across a pipe
        (:class:`~repro.core.objects.SSObject` values travel through
        the binary codec)."""
        from repro.binary_codec import dumps_object

        return (self.kind, self.lo_count, self.hi_count, self.exact,
                self.best, tuple(self.alts), tuple(self.ranges),
                tuple(dumps_object(value)
                      for value in sort_objects(self.values)))

    @classmethod
    def from_payload(cls, payload: tuple) -> "Accumulator":
        from repro.binary_codec import loads_object

        acc = cls(payload[0])
        (acc.lo_count, acc.hi_count, acc.exact,
         acc.best) = payload[1:5]
        acc.alts = [tuple(alt) for alt in payload[5]]
        acc.ranges = [tuple(r) for r in payload[6]]
        acc.values = {loads_object(blob, intern=True)
                      for blob in payload[7]}
        return acc


# -- per-row intake shared by oracle and kernel fall-backs ---------------------


def _add_object(acc: Accumulator, obj: SSObject,
                steps: tuple[str, ...] | None) -> None:
    if steps is None:
        acc.add_membership(True)
        return
    alternatives = path_alternatives(obj, steps)
    if alternatives is None:
        acc.add_exploded(evaluate_path(obj, steps, spread=True))
    else:
        acc.add_row(alternatives)


#: ``path_alternatives(...) is None`` is a meaningful result (fan-out
#: past the cap), so per-call caches need a distinct "not computed yet"
#: marker.
_ALT_UNSET = object()

#: Entries kept in a store's shared alternatives memo before it clears.
_ALT_CACHE_CAP = 1 << 18


def _cached_alternatives(cache: dict, position: int, obj: SSObject,
                         steps: tuple[str, ...]):
    """One row's alternatives at one path, computed at most once per
    cache lifetime.

    The columnar kernels resolve the same (row, path) pair repeatedly —
    once per aggregate sharing the path, once per group membership in
    the grouped kernel, and again on every re-invocation over the same
    store — and rows are rarely interned, so the identity memo inside
    :func:`path_alternatives` does not help. The cache is the store's
    :attr:`~repro.store.ColumnStore.alt_memo` when it has one (row
    positions are stable for the store's lifetime, so entries stay
    valid across queries), else one dict per kernel call.
    """
    key = (position, steps)
    alternatives = cache.get(key, _ALT_UNSET)
    if alternatives is _ALT_UNSET:
        if len(cache) >= _ALT_CACHE_CAP:
            cache.clear()
        alternatives = cache[key] = path_alternatives(obj, steps)
    return alternatives


def _store_alt_cache(store) -> dict:
    """The store-lifetime alternatives memo, or a fresh per-call dict
    for duck-typed stores without one."""
    cache = getattr(store, "alt_memo", None)
    return {} if cache is None else cache


def _normalize(aggs) -> dict[str, AggregateSpec]:
    """Accept ``{name: spec}`` or a sequence of specs (auto-labeled by
    :meth:`AggregateSpec.label`, numbered on collision)."""
    if not aggs:
        raise QueryError("aggregate() needs at least one aggregate")
    if not isinstance(aggs, Mapping):
        named: dict[str, AggregateSpec] = {}
        for spec in aggs:
            label = spec.label() if isinstance(spec, AggregateSpec) else "?"
            name, counter = label, 2
            while name in named:
                name, counter = f"{label}_{counter}", counter + 1
            named[name] = spec
        aggs = named
    out: dict[str, AggregateSpec] = {}
    for name, spec in aggs.items():
        if not isinstance(spec, AggregateSpec):
            raise QueryError(f"{name!r} is not an AggregateSpec")
        out[name] = spec
    return out


def aggregate_rows(data: Iterable[Data],
                   aggs: Mapping[str, AggregateSpec]) -> dict[str, object]:
    """The per-row definitional oracle: fold every row through
    :func:`path_alternatives` and finish."""
    aggs = _normalize(aggs)
    accs = {name: Accumulator(spec.kind) for name, spec in aggs.items()}
    steps = {name: spec.steps for name, spec in aggs.items()}
    for datum in data:
        obj = datum.object
        for name, acc in accs.items():
            _add_object(acc, obj, steps[name])
    return {name: acc.finish() for name, acc in accs.items()}


# -- the columnar kernel -------------------------------------------------------


def _columnar_into(acc: Accumulator, store, mask: int,
                   spec: AggregateSpec,
                   alt_cache: dict | None = None) -> None:
    """Fold the rows in ``mask`` into ``acc`` column-at-a-time.

    The scalar entries of the path's column — nested paths included —
    fold vectorized (popcount / eq-index / one-pass numeric stats);
    rows needing the per-row resolver (irregular entries, tuple-valued
    paths, opaque ancestors) and the residue fall back to
    :func:`path_alternatives` on the full row object, through
    ``alt_cache`` when the caller shares one across aggregates.
    Shredded rows in neither mask definitely reach nothing and
    contribute nothing.
    """
    from repro.store.columnar import bit_positions

    steps = spec.steps
    if steps is None:
        acc.add_definite_count(mask.bit_count())
        return
    rows = store.rows
    residue = store.residue_mask & mask
    shredded = store.universe_mask & mask
    column, scalar_bits, per_row_bits = store.path_masks(steps)
    scalar = scalar_bits & shredded
    if scalar:
        if spec.kind == "count":
            acc.add_definite_count(scalar.bit_count())
        elif spec.kind == "collect":
            acc.add_values(Atom(value)
                           for (_, value), bits in column.eq_index().items()
                           if bits & scalar)
        else:
            _, total, minimum, maximum = column.numeric_stats(scalar)
            acc.add_numeric_stats(total, minimum, maximum)
    for position in bit_positions((per_row_bits & shredded) | residue):
        obj = rows[position].object
        if alt_cache is None:
            _add_object(acc, obj, steps)
            continue
        alternatives = _cached_alternatives(alt_cache, position, obj,
                                            steps)
        if alternatives is None:
            acc.add_exploded(evaluate_path(obj, steps, spread=True))
        else:
            acc.add_row(alternatives)


def partial_aggregate_columnar(store, mask: int,
                               aggs: Mapping[str, AggregateSpec],
                               ) -> dict[str, Accumulator]:
    """The vectorized kernel's partial form: unfinished accumulators,
    mergeable across shards (the pushdown's per-worker step)."""
    aggs = _normalize(aggs)
    out: dict[str, Accumulator] = {}
    alt_cache = _store_alt_cache(store)
    for name, spec in aggs.items():
        acc = out[name] = Accumulator(spec.kind)
        _columnar_into(acc, store, mask, spec, alt_cache)
    return out


def aggregate_columnar(store, mask: int,
                       aggs: Mapping[str, AggregateSpec],
                       ) -> dict[str, object]:
    """The vectorized kernel: aggregate the rows selected by ``mask``
    directly on the shredded columns; only irregular and residue rows
    fall back to the per-row resolver."""
    return {name: acc.finish() for name, acc
            in partial_aggregate_columnar(store, mask, aggs).items()}


# -- grouped aggregation -------------------------------------------------------


def _group_memberships(key_alternatives, spread: Callable[[], list]):
    """``{group key: membership definite?}`` for one row.

    Set-valued keys yield several definite memberships; or-valued keys
    yield uncertain ones (the key appears in some but not all
    alternatives). Rows that may reach nothing also belong (definitely
    or uncertainly) to the ⊥ group.
    """
    if key_alternatives is None:
        memberships = {value: False for value in spread()}
        memberships.setdefault(BOTTOM, False)
        return memberships
    memberships: dict[SSObject, bool] = {}
    total = len(key_alternatives)
    counts: dict[SSObject, int] = {}
    empties = 0
    for alt in key_alternatives:
        if not alt:
            empties += 1
        for value in alt:
            counts[value] = counts.get(value, 0) + 1
    for value, seen in counts.items():
        memberships[value] = seen == total
    if empties:
        memberships[BOTTOM] = empties == total
    return memberships


def _row_group_fold(groups: dict, obj: SSObject,
                    group_steps: tuple[str, ...],
                    aggs: Mapping[str, AggregateSpec],
                    alternatives_at: Callable) -> None:
    """Fold one row into every group it (maybe-)belongs to.

    ``alternatives_at(steps)`` supplies the row's value alternatives at
    any path — from the row object (oracle, residue) or from its column
    entries (kernel) — so both strategies share the membership logic.
    """
    memberships = _group_memberships(
        alternatives_at(group_steps),
        lambda: evaluate_path(obj, group_steps, spread=True))
    for key, definite in memberships.items():
        accs = groups.get(key)
        if accs is None:
            accs = groups[key] = {name: Accumulator(spec.kind)
                                  for name, spec in aggs.items()}
        for name, spec in aggs.items():
            acc = accs[name]
            steps = spec.steps
            if steps is None:
                acc.add_membership(definite)
                continue
            if steps == group_steps and not definite:
                # Membership and value share the path: conditioned on
                # the row being in this group, its value IS the key
                # (nothing, for the ⊥ group) — not the full or-value.
                alternatives = (_EMPTY if key is BOTTOM
                                else ((), (key,)))
            else:
                alternatives = alternatives_at(steps)
                if alternatives is None:
                    acc.add_exploded(evaluate_path(obj, steps,
                                                   spread=True))
                    continue
                if not definite and () not in alternatives:
                    # Uncertain membership: may contribute nothing.
                    alternatives = (_dedup_alts(alternatives + ((),))
                                    or ((),))
            acc.add_row(alternatives)


def group_aggregate_rows(data: Iterable[Data], group_path: str,
                         aggs: Mapping[str, AggregateSpec],
                         ) -> dict[SSObject, dict[str, object]]:
    """The per-row grouped oracle."""
    aggs = _normalize(aggs)
    group_steps = parse_path(group_path)
    groups: dict[SSObject, dict[str, Accumulator]] = {}
    for datum in data:
        obj = datum.object

        def alternatives_at(steps, _obj=obj):
            return path_alternatives(_obj, steps)

        _row_group_fold(groups, obj, group_steps, aggs, alternatives_at)
    return finish_grouped(groups)


def partial_group_columnar(store, mask: int, group_path: str,
                           aggs: Mapping[str, AggregateSpec],
                           ) -> dict[SSObject, dict[str, Accumulator]]:
    """The grouped kernel's partial form: unfinished group
    accumulators, mergeable across shards via :func:`merge_grouped`."""
    from repro.store.columnar import bit_positions

    aggs = _normalize(aggs)
    group_steps = parse_path(group_path)
    groups: dict[SSObject, dict[str, Accumulator]] = {}
    rows = store.rows
    shredded = store.universe_mask & mask
    residue = store.residue_mask & mask
    column, scalar_bits, per_row_bits = store.path_masks(group_steps)
    scalar_groups = column.eq_index() if column is not None else {}
    per_row = per_row_bits & shredded
    alt_cache = _store_alt_cache(store)
    # Rows with neither an entry at the group path nor an opaque
    # ancestor definitely reach nothing: the ⊥ group, vectorized.
    bottom_mask = shredded & ~per_row_bits & ~(
        column.present if column is not None else 0)
    for (_, value), bits in scalar_groups.items():
        gmask = bits & shredded
        if not gmask:
            continue
        key = Atom(value)
        accs = groups[key] = {name: Accumulator(spec.kind)
                              for name, spec in aggs.items()}
        for name, spec in aggs.items():
            _columnar_into(accs[name], store, gmask, spec, alt_cache)
    if bottom_mask:
        accs = groups.get(BOTTOM)
        if accs is None:
            accs = groups[BOTTOM] = {name: Accumulator(spec.kind)
                                     for name, spec in aggs.items()}
        for name, spec in aggs.items():
            _columnar_into(accs[name], store, bottom_mask, spec,
                           alt_cache)
    for position in bit_positions(per_row | residue):
        obj = rows[position].object

        def alternatives_at(steps, _obj=obj, _position=position):
            return _cached_alternatives(alt_cache, _position, _obj,
                                        steps)

        _row_group_fold(groups, obj, group_steps, aggs, alternatives_at)
    return groups


def group_aggregate_columnar(store, mask: int, group_path: str,
                             aggs: Mapping[str, AggregateSpec],
                             ) -> dict[SSObject, dict[str, object]]:
    """The vectorized grouped kernel: scalar group keys partition
    through the column eq-index (one bitset intersection per group),
    each group's aggregates fold column-at-a-time, and only rows with
    irregular keys — or residue rows — walk per-row."""
    return finish_grouped(partial_group_columnar(store, mask,
                                                 group_path, aggs))


# -- grouped merge / finish / wire format (pushdown) ---------------------------


def merge_grouped(target: dict, source: dict) -> dict:
    """Merge grouped accumulator dicts in place (shard combine step)."""
    for key, accs in source.items():
        mine = target.get(key)
        if mine is None:
            target[key] = accs
        else:
            for name, acc in accs.items():
                mine[name].merge(acc)
    return target


def finish_grouped(groups: dict) -> dict[SSObject, dict[str, object]]:
    ordered = sorted(groups.items(), key=lambda kv: structural_key(kv[0]))
    return {key: {name: acc.finish() for name, acc in accs.items()}
            for key, accs in ordered}


def grouped_payload(groups: dict) -> list:
    """Grouped accumulators as pure-python wire payload."""
    from repro.binary_codec import dumps_object

    return [(dumps_object(key),
             {name: acc.payload() for name, acc in accs.items()})
            for key, accs in groups.items()]


def grouped_from_payload(payload: list) -> dict:
    from repro.binary_codec import loads_object

    return {loads_object(blob, intern=True):
            {name: Accumulator.from_payload(state)
             for name, state in states.items()}
            for blob, states in payload}
