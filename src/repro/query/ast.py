"""Conditions and the fluent query API.

Conditions are small immutable trees evaluated against a datum's object.
Comparisons use *existential* semantics, standard for semistructured
query languages (Lorel, UnQL): ``Eq("authors", "Bob")`` holds when *some*
value reached by the path equals the atom — elements of sets and
disjuncts of or-values all count as reachable values.

The fluent entry point is :class:`Query`::

    Query(dataset).where(Eq("type", "Article") & Ge("year", 1980)) \\
                  .select("title", "year").run()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.builder import obj as _to_object
from repro.core.data import Data, DataSet
from repro.core.errors import QueryError
from repro.core.objects import Atom, SSObject, Tuple
from repro.query.paths import evaluate_path, parse_path

__all__ = [
    "Condition", "Eq", "Ne", "Lt", "Le", "Gt", "Ge", "Exists",
    "Contains", "And", "Or", "Not", "Query", "project_data",
]


class Condition:
    """Base class of all conditions; supports ``&``, ``|`` and ``~``."""

    def matches(self, obj: SSObject) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)

    def __getstate__(self) -> dict:
        # Memoized derivations (compiled closures, parsed steps, the
        # invalidation profile) are unpicklable or redundant; strip them
        # so conditions travel to parallel query workers, which rebuild
        # them locally on first use.
        return {key: value for key, value in self.__dict__.items()
                if not key.startswith("_")}


def _as_steps(path: str | Sequence[str]) -> tuple[str, ...]:
    if isinstance(path, str):
        return parse_path(path)
    return tuple(path)


def _memo(instance: Condition, slot: str, compute) -> object:
    """Per-instance memo on a frozen dataclass via ``object.__setattr__``.

    Conditions are immutable, so derived values (parsed steps, coerced
    targets, compiled predicates) are computed once and pinned on the
    instance instead of being rebuilt on every ``matches`` call.
    """
    cached = instance.__dict__.get(slot)
    if cached is None:
        cached = compute()
        object.__setattr__(instance, slot, cached)
    return cached


@dataclass(frozen=True, eq=False)
class _PathCondition(Condition):
    path: str | Sequence[str]

    @property
    def steps(self) -> tuple[str, ...]:
        return _memo(self, "_steps", lambda: _as_steps(self.path))


@dataclass(frozen=True, eq=False)
class Exists(_PathCondition):
    """True when the path reaches any non-``⊥`` value."""

    def matches(self, obj: SSObject) -> bool:
        return bool(evaluate_path(obj, self.steps, spread=True))


@dataclass(frozen=True, eq=False)
class _Comparison(Condition):
    path: str | Sequence[str]
    value: object

    @property
    def steps(self) -> tuple[str, ...]:
        return _memo(self, "_steps", lambda: _as_steps(self.path))

    @property
    def target(self) -> SSObject:
        return _memo(self, "_target", lambda: _to_object(self.value))

    def _reached(self, obj: SSObject) -> list[SSObject]:
        return evaluate_path(obj, self.steps, spread=True)


class Eq(_Comparison):
    """Some reachable value equals the target object."""

    def matches(self, obj: SSObject) -> bool:
        return self.target in self._reached(obj)


class Ne(_Comparison):
    """Some reachable value differs from the target object."""

    def matches(self, obj: SSObject) -> bool:
        return any(value != self.target for value in self._reached(obj))


class _NumericComparison(_Comparison):
    """Ordered comparison against a numeric or string bound.

    Numbers compare with numbers (int and float mix freely) and strings
    compare lexicographically with strings; booleans and mixed-type pairs
    never match.
    """

    _op = staticmethod(lambda a, b: False)

    def matches(self, obj: SSObject) -> bool:
        target = self.target
        if not isinstance(target, Atom) or isinstance(target.value, bool):
            raise QueryError(
                f"ordered comparison needs a number or string bound, got "
                f"{target!r}")
        bound = target.value
        for value in self._reached(obj):
            if not isinstance(value, Atom) or isinstance(value.value, bool):
                continue
            if isinstance(bound, str):
                comparable = isinstance(value.value, str)
            else:
                comparable = isinstance(value.value, (int, float))
            if comparable and self._op(value.value, bound):
                return True
        return False


class Lt(_NumericComparison):
    """Some reachable atomic value is strictly below the bound."""
    _op = staticmethod(lambda a, b: a < b)


class Le(_NumericComparison):
    """Some reachable atomic value is at most the bound."""
    _op = staticmethod(lambda a, b: a <= b)


class Gt(_NumericComparison):
    """Some reachable atomic value is strictly above the bound."""
    _op = staticmethod(lambda a, b: a > b)


class Ge(_NumericComparison):
    """Some reachable atomic value is at least the bound."""
    _op = staticmethod(lambda a, b: a >= b)


class Contains(_Comparison):
    """For string atoms: some reachable value contains the substring."""

    def matches(self, obj: SSObject) -> bool:
        target = self.target
        if not (isinstance(target, Atom)
                and isinstance(target.value, str)):
            raise QueryError("Contains needs a string argument")
        return any(
            isinstance(value, Atom) and isinstance(value.value, str)
            and target.value in value.value
            for value in self._reached(obj)
        )


@dataclass(frozen=True, eq=False)
class And(Condition):
    left: Condition
    right: Condition

    def matches(self, obj: SSObject) -> bool:
        return self.left.matches(obj) and self.right.matches(obj)


@dataclass(frozen=True, eq=False)
class Or(Condition):
    left: Condition
    right: Condition

    def matches(self, obj: SSObject) -> bool:
        return self.left.matches(obj) or self.right.matches(obj)


@dataclass(frozen=True, eq=False)
class Not(Condition):
    inner: Condition

    def matches(self, obj: SSObject) -> bool:
        return not self.inner.matches(obj)


def project_data(selected: list[Data],
                 projection: tuple[str, ...] | None) -> list[Data]:
    """Project tuple-valued data onto the given top-level attributes.

    Non-tuple data pass through unchanged; ``projection=None`` is the
    identity. Shared by :class:`Query` and the parallel executor.
    """
    if projection is None:
        return selected
    projected = []
    for datum in selected:
        if isinstance(datum.object, Tuple):
            projected.append(
                Data(datum.marker, datum.object.project(projection)))
        else:
            projected.append(datum)
    return projected


class Query:
    """Fluent select/where/project/order/limit over a :class:`DataSet`.

    Queries are immutable; each builder call returns a new query.
    ``run()`` returns a :class:`DataSet` (unordered, set semantics);
    ``rows()`` returns an ordered list honouring ``order_by``.

    Execution routes through the planner
    (:mod:`repro.query.planner`): the condition is compiled once, and
    when an :class:`~repro.store.attr_index.AttrIndex` over the queried
    data is attached (``index=`` or :meth:`with_index`), indexable
    conjuncts probe it instead of scanning. ``naive=True`` on the
    executing methods bypasses all of that and runs the definitional
    full scan — the oracle the planned path must agree with.
    """

    def __init__(self, dataset: DataSet,
                 condition: Condition | None = None,
                 projection: tuple[str, ...] | None = None,
                 order: tuple[tuple[str, ...], bool] | None = None,
                 limit_count: int | None = None, *,
                 index: "object | None" = None,
                 columns: "object | None" = None):
        self._dataset = dataset
        self._condition = condition
        self._projection = projection
        self._order = order
        self._limit = limit_count
        self._index = index
        self._columns = columns

    def _derive(self, **changes) -> "Query":
        state = dict(dataset=self._dataset, condition=self._condition,
                     projection=self._projection, order=self._order,
                     limit_count=self._limit, index=self._index,
                     columns=self._columns)
        state.update(changes)
        return Query(**state)

    def with_columns(self, columns: "object | None") -> "Query":
        """Attach a columnar shredding of the queried data set.

        ``columns`` is a :class:`~repro.store.columnar.ColumnStore`
        over exactly this data — or a zero-argument callable building
        one lazily (what :class:`~repro.store.database.Database`
        attaches, so un-run queries never pay for shredding). Enables
        the planner's columnar scan strategy; a stale or empty store is
        ignored and the row scan runs instead.
        """
        return self._derive(columns=columns)

    def with_index(self, index: "object | None") -> "Query":
        """Attach an attribute index over the queried data set.

        The index must cover exactly the data being queried (a
        :class:`~repro.store.database.Database` maintains one and
        attaches it automatically via :meth:`Database.query`).
        """
        return self._derive(index=index)

    def where(self, condition: Condition) -> "Query":
        """Add a condition (conjoined with any existing one)."""
        combined = condition if self._condition is None else And(
            self._condition, condition)
        return self._derive(condition=combined)

    def select(self, *attributes: str) -> "Query":
        """Project tuple results onto the given top-level attributes."""
        if not attributes:
            raise QueryError("select() needs at least one attribute")
        return self._derive(projection=tuple(attributes))

    def order_by(self, path: str,
                 descending: bool = False) -> "Query":
        """Order ``rows()`` by the smallest value the path reaches.

        Data where the path reaches nothing sort last. Ordering applies
        *before* projection, so you can order by an attribute you do not
        keep.
        """
        return self._derive(order=(parse_path(path), descending))

    def limit(self, count: int) -> "Query":
        """Keep at most ``count`` results (after ordering)."""
        if count < 0:
            raise QueryError("limit() needs a non-negative count")
        return self._derive(limit_count=count)

    def explain(self, *, analyze: bool = False) -> "object":
        """The plan the next execution would use.

        Returns a :class:`repro.query.planner.Plan`; ``.describe()``
        renders it as text, including the chosen physical strategy
        (``index`` / ``columnar`` / ``row-scan``) and the planner's
        estimated row count. ``analyze=True`` also *executes* the plan
        and fills in ``actual_rows``.
        """
        import dataclasses

        from repro.query.planner import explain_plan

        plan = explain_plan(self._condition, self._index, self._order,
                            self._limit, columns=self._columns,
                            size=len(self._dataset))
        if analyze:
            plan = dataclasses.replace(
                plan, actual_rows=len(self._selected()))
        return plan

    def _selected(self, naive: bool = False) -> list[Data]:
        if naive:
            return self._selected_naive()
        from repro.query.planner import select_data

        return select_data(self._dataset, self._condition, self._index,
                           self._order, self._limit,
                           columns=self._columns)

    def _selected_naive(self) -> list[Data]:
        # The definitional full scan: the oracle for the planned path.
        selected = [
            datum for datum in self._dataset
            if self._condition is None
            or self._condition.matches(datum.object)
        ]
        if self._order is not None:
            from repro.core.order import structural_key

            steps, descending = self._order
            keyed = []
            missing = []
            for datum in selected:
                values = evaluate_path(datum.object, steps, spread=True)
                if values:
                    keyed.append((structural_key(values[0]), datum))
                else:
                    missing.append(datum)
            keyed.sort(key=lambda pair: pair[0], reverse=descending)
            # Data the path does not reach sort last in either direction.
            selected = [datum for _, datum in keyed] + missing
        if self._limit is not None:
            selected = selected[:self._limit]
        return selected

    def _project(self, selected: list[Data]) -> list[Data]:
        return project_data(selected, self._projection)

    def run(self, *, naive: bool = False) -> DataSet:
        """Execute and return the resulting data set (unordered).

        ``naive=True`` runs the definitional full scan instead of the
        planner — the equality oracle for differential tests.
        """
        return DataSet(self._project(self._selected(naive)))

    def rows(self, *, naive: bool = False) -> list[Data]:
        """Execute and return an ordered list of results.

        Without ``order_by`` the canonical structural order of the source
        data set is used, so the output is still deterministic.
        """
        return self._project(self._selected(naive))

    def values(self, path: str, *, naive: bool = False) -> list[SSObject]:
        """All values the path reaches across matching data."""
        steps = parse_path(path)
        out: set[SSObject] = set()
        for datum in self.run(naive=naive):
            out.update(evaluate_path(datum.object, steps, spread=True))
        from repro.core.order import sort_objects

        return sort_objects(out)

    def count(self, *, naive: bool = False) -> int:
        """Number of matching data."""
        return len(self.run(naive=naive))

    def join(self, other: "Query | DataSet",
             on: "str | Sequence[str]") -> "object":
        """Equi-join with another query (or data set) on key paths.

        Returns a :class:`repro.query.join.JoinQuery`. Each side's
        *condition* selects its input rows; a pair joins when the paths
        in ``on`` reach a common value on both sides — definitely, or
        only *maybe* when the match depends on an or-value disjunct or
        a ⊥-possible branch (the pair is kept with ``maybe=True``).
        """
        from repro.query.join import JoinQuery

        return JoinQuery(self, other, on)

    def _columnar_selection(self) -> "tuple | None":
        """``(store, mask)`` when the vectorized kernels may run —
        a fresh column store and a fully bitset-expressible condition."""
        from repro.query.compile import compile_columnar, compile_condition
        from repro.query.planner import _resolve_columns

        store = _resolve_columns(self._columns, len(self._dataset))
        if store is None:
            return None
        if self._condition is None:
            return store, store.universe_mask | store.residue_mask
        program = compile_columnar(self._condition)
        if program is None:
            return None
        predicate = compile_condition(self._condition)
        positions = store.match_positions(program, predicate)
        return store, store.positions_mask(positions)

    @staticmethod
    def _agg_specs(aggs: tuple, named: dict) -> dict:
        from repro.query.aggregates import _normalize

        if aggs and named:
            specs = dict(_normalize(aggs))
            specs.update(_normalize(named))
            return specs
        return _normalize(aggs or named)

    def aggregate(self, *aggs, naive: bool = False, **named) -> dict:
        """Aggregate the matching data: ``{label: outcome}``.

        Aggregates are built with :func:`~repro.query.aggregates.Count`
        / ``Sum`` / ``Min`` / ``Max`` / ``Collect`` — positionally
        (auto-labeled ``count(*)``, ``sum(year)``, ...) or by keyword.
        Outcomes are honest about partial inputs: a plain value when
        the data pin it down, an or-value of the possible outcomes when
        few, a ``[lo, hi]`` :class:`~repro.query.aggregates.Bounds`
        otherwise — never a silently wrong scalar.

        Runs the columnar kernel when a fresh column store is attached
        and the condition compiles to bitsets; ``order_by``/``limit``
        (which change *which* rows aggregate) force the row path.
        ``naive=True`` runs the definitional per-row oracle.
        """
        from repro.query.aggregates import aggregate_columnar, aggregate_rows

        specs = self._agg_specs(aggs, named)
        if not naive and self._order is None and self._limit is None:
            selection = self._columnar_selection()
            if selection is not None:
                store, mask = selection
                return aggregate_columnar(store, mask, specs)
        return aggregate_rows(self._selected(naive), specs)

    def group_aggregate(self, path: str, *aggs, naive: bool = False,
                        **named) -> dict:
        """Group by a path and aggregate each group:
        ``{group key: {label: outcome}}``.

        Groups follow :meth:`group_by` semantics — set values fan a row
        into several groups, an or-valued key makes its memberships
        *uncertain* (the group's aggregates widen accordingly), and
        rows whose path may reach nothing contribute to the ``⊥``
        group. Keys are in canonical structural order. Strategy choice
        matches :meth:`aggregate`.
        """
        from repro.query.aggregates import (group_aggregate_columnar,
                                            group_aggregate_rows)

        specs = self._agg_specs(aggs, named)
        if not naive and self._order is None and self._limit is None:
            selection = self._columnar_selection()
            if selection is not None:
                store, mask = selection
                return group_aggregate_columnar(store, mask, path, specs)
        return group_aggregate_rows(self._selected(naive), path, specs)

    def explain_aggregate(self, aggs, group: str | None = None, *,
                          analyze: bool = False) -> "object":
        """The :class:`~repro.query.planner.AggregatePlan` an aggregate
        execution would use; ``analyze=True`` also executes and fills
        the actual row and group counts."""
        import dataclasses

        from repro.query.aggregates import _normalize
        from repro.query.planner import explain_plan, plan_aggregate

        specs = _normalize(aggs)
        source = explain_plan(self._condition, self._index,
                              columns=self._columns,
                              size=len(self._dataset))
        store = None
        if self._order is None and self._limit is None:
            selection = self._columnar_selection()
            if selection is not None:
                store = selection[0]
        operations = tuple(spec.label() for spec in specs.values())
        plan = plan_aggregate(operations, group, source, store)
        if not analyze:
            return plan
        if group is None:
            result = self.aggregate(**specs)
            groups = None
        else:
            result = self.group_aggregate(group, **specs)
            groups = len(result)
        return dataclasses.replace(plan,
                                   actual_rows=len(self._selected()),
                                   actual_groups=groups)

    def group_by(self, path: str, *,
                 naive: bool = False) -> dict[SSObject, DataSet]:
        """Partition matching data by the values a path reaches.

        A datum appears under *every* value its path reaches (sets and
        or-values fan out), so groups may overlap — the honest grouping
        for multi-valued attributes. Data where the path reaches nothing
        are grouped under ``⊥``.
        """
        from repro.core.objects import BOTTOM

        steps = parse_path(path)
        groups: dict[SSObject, list[Data]] = {}
        selected = self._selected(naive)
        projected = self._project(selected)
        for original, kept in zip(selected, projected):
            # Grouping reads the *unprojected* object, so you can group
            # by an attribute the projection drops.
            values = evaluate_path(original.object, steps, spread=True)
            for value in values or [BOTTOM]:
                groups.setdefault(value, []).append(kept)
        return {value: DataSet(members)
                for value, members in groups.items()}
