"""Closure compilation of condition trees.

``Condition.matches`` is the *definitional* evaluator: every call
re-coerces the target, walks the object through
:func:`~repro.query.paths.evaluate_path` (which deduplicates and sorts
the reached values) and dispatches through Python-level polymorphism.
That shape is perfect as an oracle and hopeless as a hot path.

:func:`compile_condition` translates a condition tree *once* into a
nest of closures:

* paths are pre-parsed and targets pre-coerced at compile time;
* the tree is rewritten to negation normal form (``Not`` pushed down to
  the leaves through De Morgan), so evaluation is pure and/or/leaf
  short-circuiting;
* comparisons are type-specialized — an ordered comparison against a
  string bound compiles to a loop that only looks at string atoms, a
  numeric bound to one that only looks at numbers;
* every leaf walks the object through the lazy
  :func:`~repro.query.paths.iter_path` generator and stops at the first
  witness, skipping ``evaluate_path``'s materialize/dedup/sort entirely.

Compiled predicates are memoized on the (immutable) condition instance,
so a query re-run against a new snapshot never recompiles.

Semantics are identical to ``matches`` with one sharpening: invalid
operands (a boolean bound on an ordered comparison, a non-string
argument to ``Contains``) raise :class:`~repro.core.errors.QueryError`
at *compile* time rather than per datum.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import QueryError
from repro.core.objects import (
    BOTTOM,
    Atom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.query.ast import (
    And,
    Condition,
    Contains,
    Eq,
    Exists,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    _Comparison,
)
from repro.query.paths import iter_path

__all__ = ["compile_condition", "compile_columnar", "nnf", "conjuncts",
           "invalidation_profile", "join_invalidation_profile"]

#: A compiled predicate over a datum's object.
Predicate = Callable[[SSObject], bool]

_ORDERED_OPS = {
    Lt: lambda a, b: a < b,
    Le: lambda a, b: a <= b,
    Gt: lambda a, b: a > b,
    Ge: lambda a, b: a >= b,
}


def nnf(condition: Condition) -> Condition:
    """Rewrite to negation normal form: ``Not`` only around leaves.

    ``Not(And(a, b))`` becomes ``Or(Not(a), Not(b))`` (De Morgan),
    double negation cancels. The rewrite preserves evaluation exactly —
    conditions are two-valued — and exposes top-level conjuncts to the
    planner even when the query author wrote them under a negation.
    """
    return _nnf(condition, negate=False)


def _nnf(condition: Condition, negate: bool) -> Condition:
    if isinstance(condition, Not):
        return _nnf(condition.inner, not negate)
    if isinstance(condition, And):
        left = _nnf(condition.left, negate)
        right = _nnf(condition.right, negate)
        return Or(left, right) if negate else And(left, right)
    if isinstance(condition, Or):
        left = _nnf(condition.left, negate)
        right = _nnf(condition.right, negate)
        return And(left, right) if negate else Or(left, right)
    return Not(condition) if negate else condition


def conjuncts(condition: Condition) -> list[Condition]:
    """Flatten the top-level ``And`` spine of a condition."""
    if isinstance(condition, And):
        return conjuncts(condition.left) + conjuncts(condition.right)
    return [condition]


#: Positive leaf kinds: each holds only when *some* value reached by
#: its path satisfies the leaf, so a datum reaching nothing under the
#: path can neither start nor stop matching.
_POSITIVE_LEAVES = (Eq, Ne, Lt, Le, Gt, Ge, Contains, Exists)


def invalidation_profile(
        condition: Condition) -> tuple[frozenset[tuple[str, ...]], bool]:
    """``(footprint paths, positive)`` for cache invalidation.

    The footprint is every path a leaf of the condition mentions. When
    ``positive`` is ``True`` the condition's negation normal form
    contains only the built-in existential leaves, and a datum that
    reaches no value under any footprint path provably cannot match —
    so a write whose delta is disjoint from the footprint leaves the
    query's result untouched (the re-tag rule of
    :class:`repro.store.cache.QueryResultCache`). Negated leaves can
    match data *lacking* a path, and user-defined condition subclasses
    are opaque; both force ``positive=False`` (evict on every write).

    Memoized on the (immutable) condition instance.
    """
    cached = getattr(condition, "_invalidation", None)
    if cached is not None:
        return cached
    paths: set[tuple[str, ...]] = set()
    positive = _profile_walk(nnf(condition), paths)
    profile = (frozenset(paths), positive)
    try:
        object.__setattr__(condition, "_invalidation", profile)
    except AttributeError:  # slotted user subclass
        pass
    return profile


def join_invalidation_profile(
        left: Condition | None, right: Condition | None,
        on_steps: "tuple[tuple[str, ...], ...]",
        ) -> tuple[frozenset[tuple[str, ...]], bool]:
    """``(footprint, safe)`` for a cached two-input join result.

    The footprint spans *both* inputs: each side's condition paths plus
    every join-key path, so a write to either side — including the
    probe side only — touches the entry. Re-tagging is only sound when
    both sides have positive conditions (a side selected without a
    ``where`` gains rows on any insert, so ``safe=False`` makes every
    write evict the entry — the conservative fallback the cache
    documents).
    """
    paths: set[tuple[str, ...]] = set(on_steps)
    safe = True
    for condition in (left, right):
        if condition is None:
            safe = False
            continue
        side_paths, positive = invalidation_profile(condition)
        paths |= side_paths
        safe = safe and positive
    return frozenset(paths), safe


def _profile_walk(condition: Condition,
                  paths: set[tuple[str, ...]]) -> bool:
    if isinstance(condition, (And, Or)):
        left = _profile_walk(condition.left, paths)
        right = _profile_walk(condition.right, paths)
        return left and right
    if isinstance(condition, Not):
        _profile_walk(condition.inner, paths)
        return False
    if isinstance(condition, _POSITIVE_LEAVES):
        paths.add(condition.steps)
        # Exact leaf kinds only: a subclass may override ``matches``
        # with semantics the footprint argument does not cover.
        return type(condition) in _POSITIVE_LEAVES
    return False


def _compile_eq(condition: Eq) -> Predicate:
    steps, target = condition.steps, condition.target

    def predicate(obj: SSObject) -> bool:
        return any(value == target
                   for value in iter_path(obj, steps, spread=True))

    return predicate


def _compile_ne(condition: Ne) -> Predicate:
    steps, target = condition.steps, condition.target

    def predicate(obj: SSObject) -> bool:
        return any(value != target
                   for value in iter_path(obj, steps, spread=True))

    return predicate


def _compile_ordered(condition: _Comparison, op) -> Predicate:
    steps, target = condition.steps, condition.target
    if not isinstance(target, Atom) or isinstance(target.value, bool):
        raise QueryError(
            f"ordered comparison needs a number or string bound, got "
            f"{target!r}")
    bound = target.value
    if isinstance(bound, str):
        def predicate(obj: SSObject) -> bool:
            for value in iter_path(obj, steps, spread=True):
                if (isinstance(value, Atom)
                        and isinstance(value.value, str)
                        and op(value.value, bound)):
                    return True
            return False
    else:
        def predicate(obj: SSObject) -> bool:
            for value in iter_path(obj, steps, spread=True):
                if (isinstance(value, Atom)
                        and isinstance(value.value, (int, float))
                        and not isinstance(value.value, bool)
                        and op(value.value, bound)):
                    return True
            return False

    return predicate


def _compile_contains(condition: Contains) -> Predicate:
    steps, target = condition.steps, condition.target
    if not (isinstance(target, Atom) and isinstance(target.value, str)):
        raise QueryError("Contains needs a string argument")
    needle = target.value

    def predicate(obj: SSObject) -> bool:
        for value in iter_path(obj, steps, spread=True):
            if (isinstance(value, Atom) and isinstance(value.value, str)
                    and needle in value.value):
                return True
        return False

    return predicate


def _compile_exists(condition: Exists) -> Predicate:
    steps = condition.steps

    def predicate(obj: SSObject) -> bool:
        return any(True for _ in iter_path(obj, steps, spread=True))

    return predicate


def _compile_node(condition: Condition) -> Predicate:
    if isinstance(condition, Not):
        # After NNF only leaves sit under Not; compiling the general
        # case anyway keeps _compile_node total over condition trees.
        inner = _compile_node(condition.inner)
        return lambda obj: not inner(obj)
    if isinstance(condition, And):
        left, right = (_compile_node(condition.left),
                       _compile_node(condition.right))
        return lambda obj: left(obj) and right(obj)
    if isinstance(condition, Or):
        left, right = (_compile_node(condition.left),
                       _compile_node(condition.right))
        return lambda obj: left(obj) or right(obj)
    if isinstance(condition, Eq):
        return _compile_eq(condition)
    if isinstance(condition, Ne):
        return _compile_ne(condition)
    op = _ORDERED_OPS.get(type(condition))
    if op is not None:
        return _compile_ordered(condition, op)
    if isinstance(condition, Contains):
        return _compile_contains(condition)
    if isinstance(condition, Exists):
        return _compile_exists(condition)
    # User-defined condition subclasses fall back to their own matches.
    return condition.matches


def compile_condition(condition: Condition) -> Predicate:
    """Compile a condition tree into a single closure predicate.

    The result is cached on the condition instance (conditions are
    immutable), so repeated runs of the same query compile once.
    """
    cached = getattr(condition, "_compiled", None)
    if cached is None:
        cached = _compile_node(nnf(condition))
        try:
            object.__setattr__(condition, "_compiled", cached)
        except AttributeError:  # e.g. a slotted user subclass
            pass
    return cached


# -- column-at-a-time compilation ----------------------------------------------
#
# A *columnar program* is a closure over a duck-typed column store (see
# :class:`repro.store.columnar.ColumnStore`): ``program(store)`` returns
# ``(true_bits, maybe_bits)`` — disjoint bitsets over the store's
# shredded universe. ``true_bits`` rows definitely match, ``maybe_bits``
# rows need the compiled row predicate (or-value/⊥ sidecars), every
# other universe row definitely does not match. Residue rows are outside
# the universe and always row-evaluated by the caller.
#
# Tri-state algebra over ``(T, M)`` pairs with universe ``U``:
#
# * ``And``: ``T = Ta & Tb``; ``M = ((Ta|Ma) & (Tb|Mb)) & ~T``
# * ``Or``:  ``T = Ta | Tb``; ``M = (Ma | Mb) & ~T``
# * ``Not``: ``T' = U & ~(T | M)``; ``M' = M``
#
# The maybe set only ever narrows downstream work — it never admits a
# wrong definite answer, which is what keeps columnar == row-scan exact.

#: A compiled columnar program, or ``None`` when the condition cannot
#: be answered column-at-a-time (row scan takes over).
ColumnarProgram = Callable[[object], "tuple[int, int]"]

_COLUMNAR_ORDERED = {Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}

#: Exact model types a columnar leaf knows how to compare against.
#: Subclasses may override equality, so they bail to the row scan.
_MODEL_TYPES = (Atom, Marker, type(BOTTOM), OrValue, PartialSet,
                CompleteSet, Tuple)

_COLUMNAR_MISSING = object()


def _columnar_steps(condition: Condition) -> tuple | None:
    """The leaf's path steps, or ``None`` if columns can't answer it.

    An empty path reaches the row object itself — only the row scan
    sees that — and any condition subclass may override ``matches``,
    so only the exact built-in leaf types compile.
    """
    steps = condition.steps
    if not steps:
        return None
    return steps


def _columnar_node(condition: Condition) -> ColumnarProgram | None:
    kind = type(condition)
    if kind is Not:
        inner = _columnar_node(condition.inner)
        if inner is None:
            return None

        def negation(store):
            true_bits, maybe_bits = inner(store)
            return (store.universe_mask & ~(true_bits | maybe_bits),
                    maybe_bits)

        return negation
    if kind is And or kind is Or:
        left = _columnar_node(condition.left)
        right = _columnar_node(condition.right)
        if left is None or right is None:
            return None
        if kind is And:
            def conjunction(store):
                ta, ma = left(store)
                tb, mb = right(store)
                true_bits = ta & tb
                return (true_bits,
                        ((ta | ma) & (tb | mb)) & ~true_bits)

            return conjunction

        def disjunction(store):
            ta, ma = left(store)
            tb, mb = right(store)
            true_bits = ta | tb
            return true_bits, (ma | mb) & ~true_bits

        return disjunction
    if kind is Exists:
        steps = _columnar_steps(condition)
        if steps is None:
            return None
        return lambda store: store.leaf_exists(steps)
    if kind is Eq or kind is Ne:
        steps = _columnar_steps(condition)
        target = condition.target
        if steps is None or type(target) not in _MODEL_TYPES:
            return None
        if kind is Eq:
            return lambda store: store.leaf_eq(steps, target)
        return lambda store: store.leaf_ne(steps, target)
    op_name = _COLUMNAR_ORDERED.get(kind)
    if op_name is not None:
        steps = _columnar_steps(condition)
        target = condition.target
        # Invalid bounds bail to the row compiler, which raises the
        # canonical QueryError; duplicating the check here would only
        # duplicate the message.
        if (steps is None or type(target) is not Atom
                or isinstance(target.value, bool)
                or not isinstance(target.value, (int, float, str))):
            return None
        bound = target.value
        return lambda store: store.leaf_ordered(steps, op_name, bound)
    if kind is Contains:
        steps = _columnar_steps(condition)
        target = condition.target
        if (steps is None or type(target) is not Atom
                or not isinstance(target.value, str)):
            return None
        needle = target.value
        return lambda store: store.leaf_contains(steps, needle)
    return None  # user-defined condition subclass: row scan only


def compile_columnar(condition: Condition) -> ColumnarProgram | None:
    """Compile a condition into a columnar bitset program, if possible.

    Returns ``None`` when any part of the tree needs the row scan —
    an empty path, a user-defined condition subclass, a non-model
    comparison target, an invalid operand. Memoized on the condition
    instance (``None`` included, hence the sentinel).
    """
    cached = getattr(condition, "_columnar", _COLUMNAR_MISSING)
    if cached is _COLUMNAR_MISSING:
        cached = _columnar_node(nnf(condition))
        try:
            object.__setattr__(condition, "_columnar", cached)
        except AttributeError:  # e.g. a slotted user subclass
            pass
    return cached
