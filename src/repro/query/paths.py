"""Path expressions over model objects.

A path is a dotted sequence of attribute labels, e.g. ``authors.last``.
Evaluation is *set-valued*, the natural semantics for semistructured
data: descending into a (partial or complete) set maps the rest of the
path over its elements, and descending into an or-value maps over the
disjuncts — each alternative is a possible value. ``⊥`` yields nothing.

    >>> evaluate_path(tup(authors=cset(tup(last="Liu"),
    ...                                tup(last="Ling"))), ("authors", "last"))
    [Atom("Ling"), Atom("Liu")]   # canonical order
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.errors import QueryError
from repro.core.objects import (
    BOTTOM,
    CompleteSet,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.core.order import sort_objects

__all__ = ["parse_path", "evaluate_path", "iter_path", "path_exists"]


def parse_path(text: str) -> tuple[str, ...]:
    """Parse ``"a.b.c"`` into path steps; validates non-empty labels."""
    if not text:
        raise QueryError("empty path")
    steps = tuple(text.split("."))
    for step in steps:
        if not step:
            raise QueryError(f"path {text!r} has an empty step")
    return steps


def _descend(values: Iterable[SSObject], step: str) -> list[SSObject]:
    out: list[SSObject] = []
    for value in values:
        if isinstance(value, Tuple):
            candidate = value.get(step)
            if candidate is not BOTTOM:
                out.append(candidate)
        elif isinstance(value, (PartialSet, CompleteSet)):
            out.extend(_descend(value.elements, step))
        elif isinstance(value, OrValue):
            out.extend(_descend(value.disjuncts, step))
        # atoms, markers and ⊥ have no attributes: contribute nothing
    return out


def _unwrap(values: Iterable[SSObject]) -> list[SSObject]:
    """Spread sets and or-values into their members at the path's end."""
    out: list[SSObject] = []
    for value in values:
        if isinstance(value, (PartialSet, CompleteSet)):
            out.extend(_unwrap(value.elements))
        elif isinstance(value, OrValue):
            out.extend(_unwrap(value.disjuncts))
        elif value is not BOTTOM:
            out.append(value)
    return out


def evaluate_path(obj: SSObject, path: Sequence[str], *,
                  spread: bool = False) -> list[SSObject]:
    """All values the path reaches in ``obj``, deduplicated, canonical
    order.

    Args:
        obj: the object to navigate.
        path: attribute labels to follow.
        spread: when ``True`` the final values are unwrapped too — a set
            or or-value at the end of the path contributes its members
            instead of itself. Conditions use spread evaluation so
            ``authors = "Bob"`` matches ``authors ⇒ {"Bob", "Tom"}``.
    """
    values: list[SSObject] = [obj]
    for step in path:
        values = _descend(values, step)
    if spread:
        values = _unwrap(values)
    return sort_objects(set(values))


def _iter_descend(value: SSObject, path: Sequence[str], index: int,
                  spread: bool) -> Iterator[SSObject]:
    if index == len(path):
        if spread:
            yield from _iter_unwrap(value)
        else:
            yield value
        return
    step = path[index]
    if isinstance(value, Tuple):
        candidate = value.get(step)
        if candidate is not BOTTOM:
            yield from _iter_descend(candidate, path, index + 1, spread)
    elif isinstance(value, (PartialSet, CompleteSet)):
        # The step is consumed at a tuple, not here: a set mid-path maps
        # the remaining path over its elements (matching _descend).
        for element in value.elements:
            yield from _iter_descend(element, path, index, spread)
    elif isinstance(value, OrValue):
        for disjunct in value.disjuncts:
            yield from _iter_descend(disjunct, path, index, spread)
    # atoms, markers and ⊥ have no attributes: contribute nothing


def _iter_unwrap(value: SSObject) -> Iterator[SSObject]:
    if isinstance(value, (PartialSet, CompleteSet)):
        for element in value.elements:
            yield from _iter_unwrap(element)
    elif isinstance(value, OrValue):
        for disjunct in value.disjuncts:
            yield from _iter_unwrap(disjunct)
    elif value is not BOTTOM:
        yield value


def iter_path(obj: SSObject, path: Sequence[str], *,
              spread: bool = False) -> Iterator[SSObject]:
    """Lazily yield the values the path reaches in ``obj``.

    The *set* of yielded values equals :func:`evaluate_path` on the same
    arguments, but values arrive in structural (not canonical) order and
    may repeat — the right shape for existential checks, which only care
    whether *some* reached value satisfies a predicate and can stop at
    the first witness without paying the dedup-and-sort of
    :func:`evaluate_path`.
    """
    return _iter_descend(obj, tuple(path), 0, spread)


def path_exists(obj: SSObject, path: Sequence[str]) -> bool:
    """Whether the path reaches at least one non-``⊥`` value.

    Short-circuits on the first reached value instead of materializing,
    deduplicating and sorting the full :func:`evaluate_path` result.
    """
    return any(True for _ in iter_path(obj, path))
