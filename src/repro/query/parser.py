"""A small textual query language.

Example::

    select title, year
    where type = "Article" and year >= 1980 and not author = "Bob"

Grammar::

    query      := "select" ("*" | attr ("," attr)*) ["where" condition]
                  ["order" "by" path ["asc" | "desc"]] ["limit" NUMBER]
    condition  := conjunct ("or" conjunct)*
    conjunct   := unary ("and" unary)*
    unary      := "not" unary | "(" condition ")" | predicate
    predicate  := "exists" path
                | path "contains" literal
                | path op literal
    op         := "=" | "!=" | "<" | "<=" | ">" | ">="
    path       := IDENT ("." IDENT)*
    literal    := STRING | NUMBER | "true" | "false"

Keywords are case-insensitive. :func:`parse_query` returns a function
``DataSet -> DataSet`` so the same parsed query can run against several
sets; :func:`run_query` is the one-shot form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.core.data import DataSet
from repro.core.errors import QueryError
from repro.query.ast import (
    Condition,
    Contains,
    Eq,
    Exists,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    And,
    Query,
)

__all__ = ["QuerySpec", "parse_query_spec", "parse_query", "run_query"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<op><=|>=|!=|=|<|>|\(|\)|,|\*)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"select", "where", "and", "or", "not", "exists",
                       "contains", "true", "false", "order", "by",
                       "limit", "desc", "asc"})


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} in query")
        kind = match.lastgroup
        value = match.group(0)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        elif kind != "ws":
            tokens.append((kind, value))
        position = match.end()
    tokens.append(("eof", ""))
    return tokens


class _QueryParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._index]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        if token[0] != "eof":
            self._index += 1
        return token

    def _expect_kw(self, word: str) -> None:
        kind, value = self._next()
        if kind != "kw" or value != word:
            raise QueryError(f"expected {word!r}, found {value or 'EOF'!r}")

    def _at_kw(self, word: str) -> bool:
        kind, value = self._peek()
        return kind == "kw" and value == word

    def parse(self) -> tuple[tuple[str, ...] | None, Condition | None,
                             "tuple[str, bool] | None", int | None]:
        self._expect_kw("select")
        projection = self._parse_projection()
        condition = None
        if self._at_kw("where"):
            self._next()
            condition = self._parse_condition()
        order = self._parse_order()
        limit = self._parse_limit()
        kind, value = self._peek()
        if kind != "eof":
            raise QueryError(f"trailing input {value!r} after query")
        return projection, condition, order, limit

    def _parse_order(self) -> "tuple[str, bool] | None":
        if not self._at_kw("order"):
            return None
        self._next()
        self._expect_kw("by")
        kind, path = self._next()
        if kind != "word":
            raise QueryError(f"expected a path after 'order by', found "
                             f"{path or 'EOF'!r}")
        descending = False
        if self._at_kw("desc"):
            self._next()
            descending = True
        elif self._at_kw("asc"):
            self._next()
        return path, descending

    def _parse_limit(self) -> int | None:
        if not self._at_kw("limit"):
            return None
        self._next()
        kind, value = self._next()
        if kind != "number" or "." in value:
            raise QueryError(f"expected an integer after 'limit', found "
                             f"{value or 'EOF'!r}")
        count = int(value)
        if count < 0:
            raise QueryError("limit must be non-negative")
        return count

    def _parse_projection(self) -> tuple[str, ...] | None:
        kind, value = self._peek()
        if kind == "op" and value == "*":
            self._next()
            return None
        attrs = [self._parse_attr()]
        while self._peek() == ("op", ","):
            self._next()
            attrs.append(self._parse_attr())
        return tuple(attrs)

    def _parse_attr(self) -> str:
        kind, value = self._next()
        if kind != "word":
            raise QueryError(f"expected an attribute name, found {value!r}")
        if "." in value:
            raise QueryError(
                f"projection takes top-level attributes, not paths "
                f"({value!r})")
        return value

    def _parse_condition(self) -> Condition:
        left = self._parse_conjunct()
        while self._at_kw("or"):
            self._next()
            left = Or(left, self._parse_conjunct())
        return left

    def _parse_conjunct(self) -> Condition:
        left = self._parse_unary()
        while self._at_kw("and"):
            self._next()
            left = And(left, self._parse_unary())
        return left

    def _parse_unary(self) -> Condition:
        if self._at_kw("not"):
            self._next()
            return Not(self._parse_unary())
        if self._peek() == ("op", "("):
            self._next()
            inner = self._parse_condition()
            if self._next() != ("op", ")"):
                raise QueryError("missing ')'")
            return inner
        return self._parse_predicate()

    def _parse_predicate(self) -> Condition:
        if self._at_kw("exists"):
            self._next()
            return Exists(self._parse_path())
        path = self._parse_path()
        if self._at_kw("contains"):
            self._next()
            return Contains(path, self._parse_literal())
        kind, op = self._next()
        if kind != "op" or op not in ("=", "!=", "<", "<=", ">", ">="):
            raise QueryError(f"expected a comparison operator, found "
                             f"{op or 'EOF'!r}")
        literal = self._parse_literal()
        classes = {"=": Eq, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}
        return classes[op](path, literal)

    def _parse_path(self) -> str:
        kind, value = self._next()
        if kind != "word":
            raise QueryError(f"expected a path, found {value or 'EOF'!r}")
        return value

    def _parse_literal(self):
        kind, value = self._next()
        if kind == "string":
            return _unescape(value)
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "kw" and value in ("true", "false"):
            return value == "true"
        raise QueryError(f"expected a literal, found {value or 'EOF'!r}")


def _unescape(raw: str) -> str:
    return raw[1:-1].replace('\\"', '"').replace("\\\\", "\\")


@dataclass(frozen=True)
class QuerySpec:
    """A parsed textual query, reusable across data sets and indexes.

    The condition tree is shared between uses, so per-condition memos
    (parsed steps, compiled predicate, planner conjunct split) persist —
    a cached spec re-plans and re-executes without re-walking anything.
    """

    projection: tuple[str, ...] | None
    condition: Condition | None
    order: "tuple[str, bool] | None"
    limit: int | None

    def order_steps(self) -> "tuple[tuple[str, ...], bool] | None":
        """The order clause with its path parsed into steps — the shape
        the planner and the parallel executor consume directly."""
        if self.order is None:
            return None
        from repro.query.paths import parse_path

        return parse_path(self.order[0]), self.order[1]

    def query(self, dataset: DataSet, index: object | None = None,
              columns: object | None = None) -> Query:
        """Bind the spec to a data set (and optional attribute index
        and columnar shredding)."""
        query = Query(dataset, index=index, columns=columns)
        if self.condition is not None:
            query = query.where(self.condition)
        if self.order is not None:
            query = query.order_by(self.order[0],
                                   descending=self.order[1])
        if self.limit is not None:
            query = query.limit(self.limit)
        if self.projection is not None:
            query = query.select(*self.projection)
        return query


def parse_query_spec(text: str) -> QuerySpec:
    """Parse a textual query into a reusable :class:`QuerySpec`."""
    projection, condition, order, limit = _QueryParser(text).parse()
    return QuerySpec(projection=projection, condition=condition,
                     order=order, limit=limit)


def parse_query(text: str) -> Callable[[DataSet], DataSet]:
    """Compile a textual query into a reusable ``DataSet -> DataSet``."""
    spec = parse_query_spec(text)

    def run(dataset: DataSet) -> DataSet:
        return spec.query(dataset).run()

    return run


def run_query(text: str, dataset: DataSet) -> DataSet:
    """Parse and execute a textual query in one step."""
    return parse_query(text)(dataset)
