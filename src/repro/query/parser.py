"""A small textual query language.

Example::

    select title, year
    where type = "Article" and year >= 1980 and not author = "Bob"

Aggregate form::

    select count(*), sum(year) where type = "Article" group by publisher

Grammar::

    query      := "select" select_list ["where" condition]
                  ["group" "by" path]
                  ["order" "by" path ["asc" | "desc"]] ["limit" NUMBER]
    select_list:= "*" | attr ("," attr)* | agg ("," agg)*
    agg        := ("count" | "sum" | "min" | "max" | "collect")
                  "(" ("*" | path) ")"          -- "*" only for count
    condition  := conjunct ("or" conjunct)*
    conjunct   := unary ("and" unary)*
    unary      := "not" unary | "(" condition ")" | predicate
    predicate  := "exists" path
                | path "contains" literal
                | path op literal
    op         := "=" | "!=" | "<" | "<=" | ">" | ">="
    path       := IDENT ("." IDENT)*
    literal    := STRING | NUMBER | "true" | "false"

Keywords are case-insensitive. :func:`parse_query` returns a function
``DataSet -> DataSet`` so the same parsed query can run against several
sets; :func:`run_query` is the one-shot form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.core.data import DataSet
from repro.core.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.ast import (
    Condition,
    Contains,
    Eq,
    Exists,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    And,
    Query,
)

__all__ = ["QuerySpec", "parse_query_spec", "parse_query", "run_query"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<op><=|>=|!=|=|<|>|\(|\)|,|\*)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"select", "where", "and", "or", "not", "exists",
                       "contains", "true", "false", "order", "by",
                       "limit", "desc", "asc", "group",
                       "count", "sum", "min", "max", "collect"})

#: Aggregate-function names double as ordinary attribute names when not
#: followed by ``(`` — ``select count`` projects an attribute, ``select
#: count(*)`` aggregates.
_AGG_KEYWORDS = frozenset({"count", "sum", "min", "max", "collect"})


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} in query")
        kind = match.lastgroup
        value = match.group(0)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        elif kind != "ws":
            tokens.append((kind, value))
        position = match.end()
    tokens.append(("eof", ""))
    return tokens


class _QueryParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._index]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        if token[0] != "eof":
            self._index += 1
        return token

    def _expect_kw(self, word: str) -> None:
        kind, value = self._next()
        if kind != "kw" or value != word:
            raise QueryError(f"expected {word!r}, found {value or 'EOF'!r}")

    def _at_kw(self, word: str) -> bool:
        kind, value = self._peek()
        return kind == "kw" and value == word

    def parse(self) -> tuple:
        self._expect_kw("select")
        projection, aggregates = self._parse_select_list()
        condition = None
        if self._at_kw("where"):
            self._next()
            condition = self._parse_condition()
        group = self._parse_group()
        order = self._parse_order()
        limit = self._parse_limit()
        kind, value = self._peek()
        if kind != "eof":
            raise QueryError(f"trailing input {value!r} after query")
        if group is not None and aggregates is None:
            raise QueryError("'group by' requires aggregates in the "
                             "select list")
        if aggregates is not None and (order is not None
                                       or limit is not None):
            raise QueryError("aggregate queries take no 'order by' or "
                             "'limit'")
        return projection, condition, order, limit, aggregates, group

    def _parse_group(self) -> str | None:
        if not self._at_kw("group"):
            return None
        self._next()
        self._expect_kw("by")
        return self._parse_path()

    def _parse_order(self) -> "tuple[str, bool] | None":
        if not self._at_kw("order"):
            return None
        self._next()
        self._expect_kw("by")
        kind, path = self._next()
        if kind != "word":
            raise QueryError(f"expected a path after 'order by', found "
                             f"{path or 'EOF'!r}")
        descending = False
        if self._at_kw("desc"):
            self._next()
            descending = True
        elif self._at_kw("asc"):
            self._next()
        return path, descending

    def _parse_limit(self) -> int | None:
        if not self._at_kw("limit"):
            return None
        self._next()
        kind, value = self._next()
        if kind != "number" or "." in value:
            raise QueryError(f"expected an integer after 'limit', found "
                             f"{value or 'EOF'!r}")
        count = int(value)
        if count < 0:
            raise QueryError("limit must be non-negative")
        return count

    def _parse_select_list(self) -> tuple:
        kind, value = self._peek()
        if kind == "op" and value == "*":
            self._next()
            return None, None
        attrs: list[str] = []
        aggs: list = []
        while True:
            if self._at_agg():
                aggs.append(self._parse_agg())
            else:
                attrs.append(self._parse_attr())
            if self._peek() != ("op", ","):
                break
            self._next()
        if attrs and aggs:
            raise QueryError("cannot mix attributes and aggregates in "
                             "one select list")
        if aggs:
            return None, tuple(aggs)
        return tuple(attrs), None

    def _at_agg(self) -> bool:
        kind, value = self._peek()
        return (kind == "kw" and value in _AGG_KEYWORDS
                and self._tokens[self._index + 1] == ("op", "("))

    def _parse_agg(self) -> "AggregateSpec":
        _, fn = self._next()
        self._next()  # the "(" _at_agg saw
        if self._peek() == ("op", "*"):
            self._next()
            if fn != "count":
                raise QueryError(f"{fn}(*) is not defined; only count(*)")
            path = None
        else:
            path = self._parse_path()
        if self._next() != ("op", ")"):
            raise QueryError(f"missing ')' after {fn}(...)")
        return AggregateSpec(fn, path)

    def _parse_attr(self) -> str:
        kind, value = self._next()
        if kind == "kw" and value in _AGG_KEYWORDS:
            kind = "word"  # aggregate names double as attribute names
        if kind != "word":
            raise QueryError(f"expected an attribute name, found {value!r}")
        if "." in value:
            raise QueryError(
                f"projection takes top-level attributes, not paths "
                f"({value!r})")
        return value

    def _parse_condition(self) -> Condition:
        left = self._parse_conjunct()
        while self._at_kw("or"):
            self._next()
            left = Or(left, self._parse_conjunct())
        return left

    def _parse_conjunct(self) -> Condition:
        left = self._parse_unary()
        while self._at_kw("and"):
            self._next()
            left = And(left, self._parse_unary())
        return left

    def _parse_unary(self) -> Condition:
        if self._at_kw("not"):
            self._next()
            return Not(self._parse_unary())
        if self._peek() == ("op", "("):
            self._next()
            inner = self._parse_condition()
            if self._next() != ("op", ")"):
                raise QueryError("missing ')'")
            return inner
        return self._parse_predicate()

    def _parse_predicate(self) -> Condition:
        if self._at_kw("exists"):
            self._next()
            return Exists(self._parse_path())
        path = self._parse_path()
        if self._at_kw("contains"):
            self._next()
            return Contains(path, self._parse_literal())
        kind, op = self._next()
        if kind != "op" or op not in ("=", "!=", "<", "<=", ">", ">="):
            raise QueryError(f"expected a comparison operator, found "
                             f"{op or 'EOF'!r}")
        literal = self._parse_literal()
        classes = {"=": Eq, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}
        return classes[op](path, literal)

    def _parse_path(self) -> str:
        kind, value = self._next()
        if kind == "kw" and value in _AGG_KEYWORDS:
            kind = "word"  # aggregate names double as attribute names
        if kind != "word":
            raise QueryError(f"expected a path, found {value or 'EOF'!r}")
        return value

    def _parse_literal(self):
        kind, value = self._next()
        if kind == "string":
            return _unescape(value)
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "kw" and value in ("true", "false"):
            return value == "true"
        raise QueryError(f"expected a literal, found {value or 'EOF'!r}")


def _unescape(raw: str) -> str:
    return raw[1:-1].replace('\\"', '"').replace("\\\\", "\\")


@dataclass(frozen=True)
class QuerySpec:
    """A parsed textual query, reusable across data sets and indexes.

    The condition tree is shared between uses, so per-condition memos
    (parsed steps, compiled predicate, planner conjunct split) persist —
    a cached spec re-plans and re-executes without re-walking anything.
    """

    projection: tuple[str, ...] | None
    condition: Condition | None
    order: "tuple[str, bool] | None"
    limit: int | None
    aggregates: "tuple[AggregateSpec, ...] | None" = None
    group: str | None = None

    @property
    def is_aggregate(self) -> bool:
        """Whether this query computes aggregates (its result is a
        ``{label: outcome}`` dict, not a data set)."""
        return self.aggregates is not None

    def order_steps(self) -> "tuple[tuple[str, ...], bool] | None":
        """The order clause with its path parsed into steps — the shape
        the planner and the parallel executor consume directly."""
        if self.order is None:
            return None
        from repro.query.paths import parse_path

        return parse_path(self.order[0]), self.order[1]

    def query(self, dataset: DataSet, index: object | None = None,
              columns: object | None = None) -> Query:
        """Bind the spec to a data set (and optional attribute index
        and columnar shredding)."""
        query = Query(dataset, index=index, columns=columns)
        if self.condition is not None:
            query = query.where(self.condition)
        if self.order is not None:
            query = query.order_by(self.order[0],
                                   descending=self.order[1])
        if self.limit is not None:
            query = query.limit(self.limit)
        if self.projection is not None:
            query = query.select(*self.projection)
        return query

    def run_aggregate(self, dataset: DataSet, index: object | None = None,
                      columns: object | None = None, *,
                      naive: bool = False) -> dict:
        """Execute an aggregate spec: ``{label: outcome}``, or ``{group
        key: {label: outcome}}`` with a ``group by`` clause."""
        if self.aggregates is None:
            raise QueryError("not an aggregate query")
        query = self.query(dataset, index, columns)
        if self.group is not None:
            return query.group_aggregate(self.group, *self.aggregates,
                                         naive=naive)
        return query.aggregate(*self.aggregates, naive=naive)


def parse_query_spec(text: str) -> QuerySpec:
    """Parse a textual query into a reusable :class:`QuerySpec`."""
    (projection, condition, order, limit,
     aggregates, group) = _QueryParser(text).parse()
    return QuerySpec(projection=projection, condition=condition,
                     order=order, limit=limit, aggregates=aggregates,
                     group=group)


def parse_query(text: str) -> Callable[[DataSet], "DataSet | dict"]:
    """Compile a textual query into a reusable ``DataSet -> DataSet``.

    An aggregate query compiles to ``DataSet -> dict`` instead (see
    :meth:`QuerySpec.run_aggregate`).
    """
    spec = parse_query_spec(text)
    if spec.is_aggregate:
        return spec.run_aggregate

    def run(dataset: DataSet) -> DataSet:
        return spec.query(dataset).run()

    return run


def run_query(text: str, dataset: DataSet) -> "DataSet | dict":
    """Parse and execute a textual query in one step."""
    return parse_query(text)(dataset)
