"""Vectorized hash equi-joins over partial data.

A pair of data *joins* on a key path when some value reached by the
path on the left equals one reached on the right (the same existential
reading every predicate in this engine uses). Partiality makes the
match tri-state, exactly like the columnar scan's definite/maybe
algebra:

* **definite** — a common value is reached in *every* resolution of
  both sides' or-values (scalar values and set members);
* **maybe** — a common value exists only under *some* resolution (an
  or-value disjunct, or a ⊥-possible branch): the pair appears in the
  join output with ``maybe=True`` instead of being silently kept or
  dropped;
* otherwise the pair is out.

Multi-path joins require every path to match; the pair is definite
only when every path matches definitely.

Execution strategies, fastest first — all proven equal by the
differential suite:

* **columnar hash join** — the build side's key map is assembled from
  the column eq-index (:meth:`Column.eq_index`): one bitset
  intersection per distinct value, no per-row Python dispatch; probe
  runs column-at-a-time over the flat primitive array. Only rows with
  irregular keys (or-values, sets) and residue rows fall back to
  per-row key extraction;
* **per-row hash join** — the same hash algorithm with per-row key
  extraction (used when no column store covers a side);
* **nested-loop join** (``naive=True``) — the definitional O(n·m)
  oracle.

Per-row key extraction (:func:`join_keys`) is memoized identity-keyed
through the interning pool — like the ⊴/∪K signature memos — so
repeated joins against the same generation skip the walk entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.data import Data, DataSet
from repro.core.errors import QueryError
from repro.core.intern import is_interned as _is_interned
from repro.core.intern import on_clear as _on_clear
from repro.core.objects import Atom, SSObject
from repro.core.order import structural_key
from repro.query.aggregates import Bounds, path_alternatives
from repro.query.ast import Query
from repro.query.compile import compile_columnar, compile_condition
from repro.query.paths import evaluate_path, parse_path
from repro.query.planner import (
    JoinPlan,
    _resolve_columns,
    explain_plan,
    plan_join,
)
from repro.store.cache import LRUCache

__all__ = ["JoinRow", "JoinQuery", "join_keys", "pair_match",
           "hash_join", "nested_loop_join"]


@dataclass(frozen=True)
class JoinRow:
    """One joined pair; ``maybe`` marks a partial-information match."""

    left: Data
    right: Data
    maybe: bool = False


#: Capacity of the join-key memo below. Generous — a 100k-row join per
#: side fits — but bounded: before the LRU the memo grew without limit
#: for the lifetime of the intern pool.
_KEY_MEMO_CAPACITY = 262_144

#: Identity-keyed join-key memo: ``(id(obj), steps) -> (definite,
#: possible)``. Entries are only written for interned objects (whose
#: ids are pinned by the pool's strong references); the memo clears
#: with the pool and evicts least-recently-used past the cap.
_KEY_MEMO = LRUCache(_KEY_MEMO_CAPACITY)
_on_clear(_KEY_MEMO.clear)


def _normalize_key(value: SSObject):
    """Hashable, type-strict key for a reached value: atoms unwrap to
    ``(type, primitive)`` (matching the column eq-index keys), other
    objects key by themselves."""
    if type(value) is Atom:
        return (type(value.value), value.value)
    return value


def _keys_of(obj: SSObject,
             steps: tuple[str, ...]) -> tuple[frozenset, frozenset]:
    alternatives = path_alternatives(obj, steps)
    if alternatives is None:
        possible = frozenset(_normalize_key(value) for value
                             in evaluate_path(obj, steps, spread=True))
        return frozenset(), possible
    sets = [frozenset(_normalize_key(value) for value in alt)
            for alt in alternatives]
    definite = frozenset.intersection(*sets)
    possible = frozenset().union(*sets)
    return definite, possible


def join_keys(obj: SSObject,
              steps: Sequence[str]) -> tuple[frozenset, frozenset]:
    """``(definite, possible)`` join keys of one row at a path.

    ``definite`` keys are reached under every resolution of the row's
    or-values; ``possible`` ⊇ ``definite`` adds the keys reached under
    some resolution. Memoized identity-keyed for interned rows.
    """
    steps = tuple(steps)
    if _is_interned(obj):
        memo_key = (id(obj), steps)
        cached = _KEY_MEMO.get(memo_key)
        if cached is None:
            cached = _keys_of(obj, steps)
            _KEY_MEMO.put(memo_key, cached)
        return cached
    return _keys_of(obj, steps)


def pair_match(left: SSObject, right: SSObject,
               on_steps: Sequence[tuple[str, ...]]) -> str | None:
    """``"definite"``, ``"maybe"`` or ``None`` for one candidate pair."""
    definite = True
    for steps in on_steps:
        left_definite, left_possible = join_keys(left, steps)
        right_definite, right_possible = join_keys(right, steps)
        if not left_definite.isdisjoint(right_definite):
            continue
        if left_possible.isdisjoint(right_possible):
            return None
        definite = False
    return "definite" if definite else "maybe"


def _canonical(datum: Data) -> tuple:
    return (structural_key(datum.marker), structural_key(datum.object))


def _finish(pairs: dict) -> list[JoinRow]:
    rows = [JoinRow(left, right, maybe)
            for (left, right), maybe in pairs.items()]
    rows.sort(key=lambda row: (_canonical(row.left),
                               _canonical(row.right)))
    return rows


def nested_loop_join(left_rows: Sequence[Data],
                     right_rows: Sequence[Data],
                     on: Sequence[str]) -> list[JoinRow]:
    """The definitional O(n·m) oracle every hash strategy must equal."""
    on_steps = tuple(parse_path(path) for path in on)
    pairs: dict = {}
    for left in left_rows:
        for right in right_rows:
            match = pair_match(left.object, right.object, on_steps)
            if match is not None:
                pairs[(left, right)] = match == "maybe"
    return _finish(pairs)


# -- hash join -----------------------------------------------------------------


class _Side:
    """One join input: its selected rows plus (optionally) the column
    store and selection bitset that make the vectorized path legal."""

    __slots__ = ("rows", "store", "mask")

    def __init__(self, rows: list[Data], store=None, mask: int | None = None):
        self.rows = rows
        self.store = store
        self.mask = mask

    @property
    def vectorized(self) -> bool:
        return self.store is not None and self.mask is not None


def _build_maps(side: _Side, steps: tuple[str, ...]):
    """``(definite_map, maybe_map)``: normalized key → build rows.

    Vectorized when the side has a column store: the scalar entries of
    the key path's column — nested paths included — come straight out
    of the eq-index (one bitset intersection per distinct value); only
    rows with irregular keys, tuple-valued keys or opaque ancestors,
    plus the residue, walk per-row.
    """
    from repro.store.columnar import bit_positions

    definite_map: dict = {}
    maybe_map: dict = {}

    def add_per_row(datum: Data) -> None:
        definite, possible = join_keys(datum.object, steps)
        for key in definite:
            definite_map.setdefault(key, []).append(datum)
        for key in possible - definite:
            maybe_map.setdefault(key, []).append(datum)

    if not side.vectorized:
        for datum in side.rows:
            add_per_row(datum)
        return definite_map, maybe_map

    store, mask = side.store, side.mask
    rows = store.rows
    shredded = store.universe_mask & mask
    column, _, per_row_bits = store.path_masks(steps)
    if column is not None:
        for key, bits in column.eq_index().items():
            selected = bits & shredded
            if selected:
                definite_map[key] = [rows[position] for position
                                     in bit_positions(selected)]
    per_row = (per_row_bits & shredded) | (store.residue_mask & mask)
    for position in bit_positions(per_row):
        add_per_row(rows[position])
    return definite_map, maybe_map


def _probe_keys_per_row(datum: Data, steps: tuple[str, ...]):
    return join_keys(datum.object, steps)


def hash_join(left: _Side | Sequence[Data], right: _Side | Sequence[Data],
              on: Sequence[str], *, build: str = "right",
              ) -> list[JoinRow]:
    """Hash join on the first key path, verifying any further paths per
    candidate pair. ``build`` names the hashed side."""
    if not on:
        raise QueryError("join needs at least one key path")
    if isinstance(left, (list, tuple)):
        left = _Side(list(left))
    if isinstance(right, (list, tuple)):
        right = _Side(list(right))
    on_steps = tuple(parse_path(path) for path in on)
    rest = on_steps[1:]
    swap = build == "left"
    build_side, probe_side = (left, right) if swap else (right, left)
    definite_map, maybe_map = _build_maps(build_side, on_steps[0])

    pairs: dict = {}

    def emit(probe_datum: Data, partner: Data, maybe: bool) -> None:
        if rest:
            verdict = pair_match(probe_datum.object, partner.object, rest)
            if verdict is None:
                return
            maybe = maybe or verdict == "maybe"
        key = ((partner, probe_datum) if swap else (probe_datum, partner))
        current = pairs.get(key)
        if current is None or (current and not maybe):
            pairs[key] = maybe

    def probe_with(datum: Data, definite: frozenset,
                   possible: frozenset) -> None:
        for key in definite:
            for partner in definite_map.get(key, ()):
                emit(datum, partner, False)
        for key in possible:
            uncertain = key not in definite
            for partner in definite_map.get(key, ()):
                if uncertain:
                    emit(datum, partner, True)
            for partner in maybe_map.get(key, ()):
                emit(datum, partner, True)

    if probe_side.vectorized:
        from repro.store.columnar import bit_positions

        store, mask = probe_side.store, probe_side.mask
        rows = store.rows
        shredded = store.universe_mask & mask
        column, scalar_bits, per_row_bits = store.path_masks(on_steps[0])
        per_row = ((store.residue_mask & mask)
                   | (per_row_bits & shredded))
        if column is not None:
            values = column.values
            for position in bit_positions(scalar_bits & shredded):
                value = values[position]
                key = (type(value), value)
                datum = rows[position]
                for partner in definite_map.get(key, ()):
                    emit(datum, partner, False)
                for partner in maybe_map.get(key, ()):
                    emit(datum, partner, True)
        for position in bit_positions(per_row):
            datum = rows[position]
            definite, possible = join_keys(datum.object, on_steps[0])
            probe_with(datum, definite, possible)
    else:
        for datum in probe_side.rows:
            definite, possible = join_keys(datum.object, on_steps[0])
            probe_with(datum, definite, possible)
    return _finish(pairs)


# -- the fluent join query -----------------------------------------------------


class JoinQuery:
    """A two-input equi-join, built by :meth:`Query.join`.

    The inputs' *conditions* select each side (their projections,
    ordering and limits do not apply — the join reads whole rows);
    execution picks the vectorized build/probe paths whenever a side
    has a usable column store attached.
    """

    def __init__(self, left: Query, right: "Query | DataSet",
                 on: "str | Sequence[str]"):
        if isinstance(right, DataSet):
            right = Query(right)
        if not isinstance(right, Query):
            raise QueryError("join expects a Query or DataSet "
                             "right-hand side")
        self._left = left
        self._right = right
        self._on = ((on,) if isinstance(on, str) else tuple(on))
        if not self._on:
            raise QueryError("join needs at least one key path")
        for path in self._on:
            parse_path(path)

    # -- per-side selection ----------------------------------------------------

    @staticmethod
    def _side(query: Query, naive: bool) -> _Side:
        dataset = query._dataset
        condition = query._condition
        if naive:
            rows = [datum for datum in dataset
                    if condition is None or condition.matches(datum.object)]
            return _Side(rows)
        store = _resolve_columns(query._columns, len(dataset))
        if condition is None:
            rows = list(dataset)
            if store is None:
                return _Side(rows)
            return _Side(rows, store,
                         store.universe_mask | store.residue_mask)
        predicate = compile_condition(condition)
        program = compile_columnar(condition)
        if store is None or program is None:
            rows = [datum for datum in dataset
                    if predicate(datum.object)]
            return _Side(rows)
        positions = store.match_positions(program, predicate)
        rows = [store.rows[position] for position in positions]
        return _Side(rows, store, store.positions_mask(positions))

    # -- execution -------------------------------------------------------------

    def rows(self, *, naive: bool = False) -> list[JoinRow]:
        """Joined pairs in canonical (left, right) order.

        ``naive=True`` runs the nested-loop oracle over naively
        selected sides.
        """
        left = self._side(self._left, naive)
        right = self._side(self._right, naive)
        if naive:
            return nested_loop_join(left.rows, right.rows, self._on)
        plan = self._plan(left, right)
        return hash_join(left, right, self._on, build=plan.build)

    def count(self) -> "int | Bounds":
        """Number of joined pairs — a ``[lo, hi]`` when maybe-matches
        make the exact count unknowable."""
        rows = self.rows()
        maybe = sum(1 for row in rows if row.maybe)
        if maybe:
            return Bounds(len(rows) - maybe, len(rows))
        return len(rows)

    # -- planning --------------------------------------------------------------

    def _plan(self, left: _Side, right: _Side,
              strategy: str = "hash") -> JoinPlan:
        left_plan = explain_plan(self._left._condition, self._left._index,
                                 columns=self._left._columns,
                                 size=len(self._left._dataset))
        right_plan = explain_plan(self._right._condition,
                                  self._right._index,
                                  columns=self._right._columns,
                                  size=len(self._right._dataset))
        build = plan_join(self._on, left_plan, right_plan,
                          len(self._left._dataset),
                          len(self._right._dataset)).build
        build_store = (left if build == "left" else right).store
        return plan_join(self._on, left_plan, right_plan,
                         len(self._left._dataset),
                         len(self._right._dataset),
                         build_store=build_store, strategy=strategy)

    def explain(self, *, analyze: bool = False) -> JoinPlan:
        """The join plan; ``analyze=True`` also executes and fills the
        actual row counts per side and pair counts."""
        left = self._side(self._left, False)
        right = self._side(self._right, False)
        plan = self._plan(left, right)
        if not analyze:
            return plan
        rows = hash_join(left, right, self._on, build=plan.build)
        maybe = sum(1 for row in rows if row.maybe)
        from dataclasses import replace

        return replace(plan, actual_left=len(left.rows),
                       actual_right=len(right.rows),
                       actual_pairs=len(rows), actual_maybe=maybe)
