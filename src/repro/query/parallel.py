"""Sharded parallel execution of the scan/residual query phase.

The planner's index path answers probe-friendly queries in microseconds,
but a residual-heavy plan — conditions over unindexed paths, ``Or`` at
the top, negated leaves — degenerates to a compiled full scan that is
CPU-bound and embarrassingly parallel. :class:`ParallelExecutor` shards
that scan:

* the dataset's canonical order is materialized once and split into
  **contiguous shards**, so a shard-local position plus the shard offset
  is a global canonical position;
* ``mode="process"`` shreds each shard into a
  :class:`~repro.store.columnar.ColumnStore` and ships the *columns* to
  a dedicated worker process **once**, through the binary wire format of
  :mod:`repro.binary_codec` (labels travel once per column instead of
  once per row, and the value table dedups repeated values), then serves
  any number of queries over the resident shard store — columnar bitset
  evaluation when the condition compiles, row logic otherwise. Per query
  only the condition travels out (conditions strip their
  compiled-closure memos when pickled) and match *positions* — plain
  ints — travel back;
* ``mode="thread"`` runs the same shard logic on a thread pool over the
  parent's own objects: no codec, no resident workers, useful when scans
  release the GIL rarely but fan-out cost must stay near zero. Shard
  column stores build lazily on first use and stay cached for the
  executor's lifetime, so repeated queries re-shred nothing;
* ``order_by`` + ``limit`` push down per shard
  (:func:`repro.query.planner.shard_positions`): any global top-k
  element ranks within its own shard's stable top-k, so each worker
  returns at most ``limit`` positions and the parent's final
  :func:`~repro.query.planner._order_limit` pass over the merged
  superset reproduces the sequential result exactly.

Routing stays plan-aware: :meth:`ParallelExecutor.select` runs
probe-capable plans inline (an index probe is faster than any fan-out)
and only fans out scan-strategy plans. Like the bulk-merge pool
(:mod:`repro.store.bulk`), *infrastructure* failures — a dead worker, a
pipe error, codec trouble — fall back to the sequential scan with a
:class:`RuntimeWarning`; genuine query errors raised by a worker
propagate.

The executor pins the exact data it was built from, so a
:class:`~repro.store.database.Database` rebuilds it per generation: all
queries served by one executor see one immutable snapshot.
"""

from __future__ import annotations

import io
import pickle
import threading
import warnings
from typing import TYPE_CHECKING, Sequence

from repro.binary_codec import Decoder, Encoder
from repro.core.data import Data, DataSet
from repro.core.errors import CodecError, QueryError
from repro.query.ast import Condition
from repro.query.planner import (
    _order_limit,
    columnar_shard_positions,
    explain_plan,
    select_data,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.attr_index import AttrIndex

__all__ = ["ParallelExecutor"]

#: Infrastructure failures that trigger the sequential fallback.
_INFRA_ERRORS = (CodecError, OSError, EOFError, pickle.PicklingError,
                 ValueError, ImportError, NotImplementedError)


def _shard_store(shard: Sequence[Data]):
    """Shred one contiguous canonical shard into a column store."""
    from repro.store.columnar import ColumnStore

    return ColumnStore.build(shard, ordered=True)


def _encode_shard(shard: Sequence[Data]) -> bytes:
    """One shard as wire bytes: its column store in shard layout."""
    from repro.store.columnar import write_column_shard

    buffer = io.BytesIO()
    encoder = Encoder(buffer)
    write_column_shard(encoder, _shard_store(shard))
    encoder.flush()
    return buffer.getvalue()


def _shard_partial(store, condition, group, aggs):
    """One shard's partial aggregation: unfinished accumulators over
    the rows its condition selects."""
    from repro.query.aggregates import (partial_aggregate_columnar,
                                        partial_group_columnar)

    positions = columnar_shard_positions(store, condition, None, None)
    mask = store.positions_mask(positions)
    if group is None:
        return partial_aggregate_columnar(store, mask, aggs)
    return partial_group_columnar(store, mask, group, aggs)


def _shard_partial_payload(store, condition, group, aggs):
    """One shard's partial aggregation as pure-python wire payload
    (:class:`~repro.core.objects.SSObject` state travels through the
    binary codec, never through pickle)."""
    from repro.query.aggregates import grouped_payload

    partial = _shard_partial(store, condition, group, aggs)
    if group is None:
        return {name: acc.payload() for name, acc in partial.items()}
    return grouped_payload(partial)


def _shard_server(connection) -> None:
    """Worker process main loop: hold one decoded shard, answer queries.

    Protocol (parent → worker): ``("data", payload)`` exactly once, then
    any number of ``("query", condition, order, limit)`` and
    ``("aggregate", condition, group_path, aggs)`` requests, finally
    ``("stop",)``. Every request gets one reply: ``("ok", result)`` or
    ``("err", type_name, message)``.

    The shard arrives as a column store and stays resident in that
    shape: each query evaluates column-at-a-time where it can and walks
    only maybe/residue rows. Aggregate requests answer with *partial*
    accumulator payloads (pure-python wire state), which the parent
    merges and finishes — the partial-aggregation pushdown.
    """
    from repro.store.columnar import read_column_shard

    store = None
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "stop":
                return
            try:
                if kind == "data":
                    decoder = Decoder(io.BytesIO(message[1]), intern=True)
                    store = read_column_shard(decoder)
                    connection.send(("ok", store.size))
                elif kind == "query":
                    _, condition, order, limit = message
                    positions = columnar_shard_positions(
                        store, condition, order, limit)
                    connection.send(("ok", positions))
                elif kind == "aggregate":
                    _, condition, group, aggs = message
                    connection.send(
                        ("ok", _shard_partial_payload(store, condition,
                                                      group, aggs)))
                else:
                    connection.send(("err", "ValueError",
                                     f"unknown request {kind!r}"))
            except Exception as error:  # noqa: BLE001 - shipped to parent
                connection.send(
                    ("err", type(error).__name__, str(error)))
    finally:
        connection.close()


class ParallelExecutor:
    """A pool of shard workers serving one immutable dataset snapshot.

    ``workers`` bounds the shard count (small datasets use fewer);
    ``index`` enables plan-aware routing (probe plans run inline);
    ``mode`` is ``"process"`` (resident shard servers over the binary
    codec) or ``"thread"`` (shared-memory thread pool). The executor is
    thread-safe: concurrent :meth:`select` calls serialize on the pipe
    fan-out, which is cheap next to the sharded work itself.
    """

    def __init__(self, dataset: DataSet, *, workers: int,
                 index: "AttrIndex | None" = None,
                 mode: str = "process", timeout: float = 120.0):
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if mode not in ("process", "thread"):
            raise QueryError(f"unknown parallel mode {mode!r}")
        self._dataset = dataset
        self._index = index
        self._mode = mode
        self._timeout = timeout
        self._order: list[Data] = list(dataset)
        self._lock = threading.Lock()
        self._closed = False
        self._processes: list = []
        self._pipes: list = []
        self._offsets: list[int] = []
        self._shards: list[list[Data]] = []
        size = len(self._order)
        count = max(1, min(workers, size)) if size else 1
        step = -(-size // count) if size else 1
        offset = 0
        while offset < size:
            self._shards.append(self._order[offset:offset + step])
            self._offsets.append(offset)
            offset += step
        if not self._shards:
            self._shards = [[]]
            self._offsets = [0]
        # Thread-mode shard column stores, shredded lazily on first use
        # and cached for the executor's (single-generation) lifetime.
        self._shard_stores: list = [None] * len(self._shards)
        if mode == "process":
            self._start_processes()

    # -- lifecycle -------------------------------------------------------------

    def _start_processes(self) -> None:
        """Spawn one resident shard server per shard; ship shards once.

        Any failure here tears the half-built pool down and degrades the
        executor to thread mode with a :class:`RuntimeWarning` — callers
        never see a broken pool.
        """
        import multiprocessing

        try:
            for shard in self._shards:
                parent, child = multiprocessing.Pipe()
                process = multiprocessing.Process(
                    target=_shard_server, args=(child,), daemon=True)
                process.start()
                child.close()
                self._processes.append(process)
                self._pipes.append(parent)
            for pipe, shard in zip(self._pipes, self._shards):
                pipe.send(("data", _encode_shard(shard)))
            for pipe in self._pipes:
                reply = self._receive(pipe)
                if reply[0] != "ok":
                    raise OSError(f"shard load failed: {reply!r}")
        except _INFRA_ERRORS as error:
            self._teardown()
            self._mode = "thread"
            warnings.warn(
                f"parallel query workers unavailable "
                f"({type(error).__name__}: {error}); "
                f"degrading to thread mode",
                RuntimeWarning, stacklevel=3)

    def _receive(self, pipe):
        if not pipe.poll(self._timeout):
            raise OSError("shard worker timed out")
        return pipe.recv()

    def _teardown(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            try:
                pipe.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
        self._processes = []
        self._pipes = []

    def close(self) -> None:
        """Stop the workers; the executor is unusable afterwards."""
        with self._lock:
            if not self._closed:
                self._teardown()
                self._closed = True

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def workers(self) -> int:
        return len(self._shards)

    # -- execution -------------------------------------------------------------

    def select(self, condition: Condition | None,
               order: tuple[Sequence[str], bool] | None = None,
               limit: int | None = None) -> list[Data]:
        """Plan-aware parallel selection; result equals
        :func:`~repro.query.planner.select_data` exactly.

        Probe-capable plans (and trivially small datasets) run inline;
        scan-strategy plans fan out across the shard workers.
        """
        if self._closed:
            raise QueryError("executor is closed")
        plan = explain_plan(condition, self._index, order, limit)
        if plan.strategy == "index" or len(self._shards) < 2:
            return select_data(self._dataset, condition, self._index,
                               order, limit)
        merged = self._fanout(condition, order, limit)
        if merged is None:
            return select_data(self._dataset, condition, self._index,
                               order, limit)
        return _order_limit(merged, order, limit)

    def _fanout(self, condition, order, limit) -> list[Data] | None:
        """Run the sharded scan; ``None`` means "fall back sequential".

        The merged survivor list is in global canonical order: shards
        are contiguous canonical slices and each worker returns
        ascending shard-local positions.
        """
        if self._mode == "thread":
            return self._fanout_threads(condition, order, limit)
        with self._lock:
            if not self._pipes:
                return self._fanout_threads(condition, order, limit)
            try:
                for pipe in self._pipes:
                    pipe.send(("query", condition, order, limit))
                # Drain every pipe before acting on failures, so one
                # erroring shard cannot desynchronize the others.
                replies = [self._receive(pipe) for pipe in self._pipes]
                merged: list[Data] = []
                for reply, offset in zip(replies, self._offsets):
                    if reply[0] != "ok":
                        _, name, message = reply
                        if name == "QueryError":
                            raise QueryError(message)
                        raise RuntimeError(
                            f"shard worker failed: {name}: {message}")
                    merged.extend(self._order[offset + position]
                                  for position in reply[1])
                return merged
            except _INFRA_ERRORS as error:
                self._teardown()
                self._mode = "thread"
                warnings.warn(
                    f"parallel query fan-out failed "
                    f"({type(error).__name__}: {error}); "
                    f"falling back to sequential scan",
                    RuntimeWarning, stacklevel=3)
                return None

    def aggregate(self, condition: Condition | None, aggs,
                  group: str | None = None) -> dict:
        """Parallel aggregation with partial-aggregate pushdown.

        Each shard folds its own rows into *partial* accumulators
        (columnar kernels over the resident shard store); the parent
        merges the partial states and finishes once. Accumulator merge
        is commutative and finishing sorts contributions, so the result
        equals the sequential kernel exactly — the differential suite's
        invariant. ``group`` adds a group-by path; the result shape
        matches :meth:`Query.aggregate` / :meth:`Query.group_aggregate`.
        """
        from repro.query.aggregates import _normalize

        if self._closed:
            raise QueryError("executor is closed")
        aggs = _normalize(aggs)
        if group is not None:
            from repro.query.paths import parse_path

            parse_path(group)
        if len(self._shards) < 2:
            return self._aggregate_sequential(condition, aggs, group)
        partials = self._fanout_aggregate(condition, aggs, group)
        if partials is None:
            return self._aggregate_sequential(condition, aggs, group)
        from repro.query.aggregates import finish_grouped, merge_grouped

        if group is None:
            merged: dict = {}
            for partial in partials:
                for name, acc in partial.items():
                    mine = merged.get(name)
                    if mine is None:
                        merged[name] = acc
                    else:
                        mine.merge(acc)
            return {name: acc.finish() for name, acc in merged.items()}
        grouped: dict = {}
        for partial in partials:
            merge_grouped(grouped, partial)
        return finish_grouped(grouped)

    def _aggregate_sequential(self, condition, aggs, group) -> dict:
        from repro.query.aggregates import (aggregate_rows,
                                            group_aggregate_rows)

        rows = select_data(self._dataset, condition, self._index)
        if group is None:
            return aggregate_rows(rows, aggs)
        return group_aggregate_rows(rows, group, aggs)

    def _fanout_aggregate(self, condition, aggs, group):
        """Per-shard partial accumulators; ``None`` means "fall back"."""
        if self._mode == "thread":
            return self._aggregate_threads(condition, aggs, group)
        with self._lock:
            if not self._pipes:
                return self._aggregate_threads(condition, aggs, group)
            try:
                for pipe in self._pipes:
                    pipe.send(("aggregate", condition, group, aggs))
                replies = [self._receive(pipe) for pipe in self._pipes]
                partials = []
                for reply in replies:
                    if reply[0] != "ok":
                        _, name, message = reply
                        if name == "QueryError":
                            raise QueryError(message)
                        raise RuntimeError(
                            f"shard worker failed: {name}: {message}")
                    partials.append(self._decode_partial(reply[1], group))
                return partials
            except _INFRA_ERRORS as error:
                self._teardown()
                self._mode = "thread"
                warnings.warn(
                    f"parallel aggregate fan-out failed "
                    f"({type(error).__name__}: {error}); "
                    f"falling back to sequential aggregation",
                    RuntimeWarning, stacklevel=3)
                return None

    @staticmethod
    def _decode_partial(payload, group):
        from repro.query.aggregates import Accumulator, grouped_from_payload

        if group is None:
            return {name: Accumulator.from_payload(state)
                    for name, state in payload.items()}
        return grouped_from_payload(payload)

    def _aggregate_threads(self, condition, aggs, group) -> list:
        from concurrent.futures import ThreadPoolExecutor

        def run(position: int):
            return _shard_partial(self._thread_shard_store(position),
                                  condition, group, aggs)

        with ThreadPoolExecutor(max_workers=len(self._shards)) as pool:
            futures = [pool.submit(run, position)
                       for position in range(len(self._shards))]
            return [future.result() for future in futures]

    def _thread_shard_store(self, position: int):
        store = self._shard_stores[position]
        if store is None:
            # Benign race: concurrent queries may both shred the same
            # shard; the stores are equivalent and one wins.
            store = _shard_store(self._shards[position])
            self._shard_stores[position] = store
        return store

    def _fanout_threads(self, condition, order, limit) -> list[Data]:
        from concurrent.futures import ThreadPoolExecutor

        def run(position: int) -> list[int]:
            return columnar_shard_positions(
                self._thread_shard_store(position), condition, order,
                limit)

        with ThreadPoolExecutor(max_workers=len(self._shards)) as pool:
            futures = [pool.submit(run, position)
                       for position in range(len(self._shards))]
            merged: list[Data] = []
            for future, offset in zip(futures, self._offsets):
                merged.extend(self._order[offset + position]
                              for position in future.result())
        return merged
