"""A planned, index-backed execution engine for queries.

The naive read path walks the whole data set and evaluates the full
condition against every datum. This module plans instead:

1. the condition is rewritten to negation normal form and its top-level
   ``And`` spine is split into conjuncts
   (:func:`repro.query.compile.conjuncts`);
2. conjuncts an :class:`~repro.store.attr_index.AttrIndex` can answer
   *exactly* — ``Eq``/``Exists``/``Contains`` on indexed paths, whose
   existential semantics the index mirrors — become **probes**;
3. probe candidate sets intersect starting from the most selective
   (smallest) one, short-circuiting on empty;
4. the remaining conjuncts form the **residual**, compiled once
   (:func:`~repro.query.compile.compile_condition`) and run over the
   candidates only;
5. ``order_by`` + ``limit`` push down to ``heapq.nsmallest`` /
   ``nlargest`` so a top-k query never sorts the full match set.

When nothing is indexable (no index, an ``Or`` at the top, negated
leaves) the plan picks between two scan strategies. If the snapshot has
a columnar shredding (:class:`repro.store.columnar.ColumnStore`) and
the condition compiles to a bitset program
(:func:`~repro.query.compile.compile_columnar`), the **columnar scan**
answers the shredded rows with bitset algebra and row-evaluates only
the maybe-sidecar and residue rows. Otherwise the **row scan** — the
compiled full scan — runs; it is still faster than ``matches``, and
always available. Results are *identical* to the naive scan: probes are
exact, the residual preserves the non-probe conjuncts, columnar
definite sets are exact by the shred invariants, and ordering
reproduces the stable-sort/missing-last semantics of
``Query._selected_naive`` tie for tie. The plan-vs-scan equality oracle
(tests and ``benchmarks/bench_query_planner.py``) asserts exactly that.

The conjunct split is memoized on the (immutable) condition per covered
path set, so a cached parsed query re-plans in O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.data import Data, DataSet
from repro.core.objects import Atom
from repro.core.order import structural_key
from repro.query.ast import And, Condition, Contains, Eq, Exists
from repro.query.compile import (
    compile_columnar,
    compile_condition,
    conjuncts,
    nnf,
)
from repro.query.paths import evaluate_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.attr_index import AttrIndex
    from repro.store.columnar import ColumnStore

__all__ = ["Plan", "Probe", "JoinPlan", "AggregatePlan", "select_data",
           "explain_plan", "plan_join", "plan_aggregate",
           "shard_positions", "columnar_shard_positions"]


@dataclass(frozen=True)
class Probe:
    """One index lookup the plan performs."""

    path: str
    op: str               # "=", "exists" or "contains"
    value: str | None     # repr of the probed value, None for exists
    selectivity: int | None = None   # candidate count, when known

    def describe(self) -> str:
        detail = f" {self.value}" if self.value is not None else ""
        count = (f" (~{self.selectivity} candidates)"
                 if self.selectivity is not None else "")
        return f"probe {self.path} {self.op}{detail}{count}"


@dataclass(frozen=True)
class Plan:
    """The strategy :func:`select_data` chose, for ``Query.explain()``."""

    strategy: str                    # "index", "columnar" or "row-scan"
    probes: tuple[Probe, ...] = ()
    residual: str | None = None      # repr of the post-probe condition
    order_pushdown: bool = False     # heapq top-k instead of full sort
    reason: str = ""
    estimated_rows: int | None = None   # planner's upper-bound estimate
    actual_rows: int | None = None      # filled by explain(analyze=True)
    shredded_rows: int | None = None    # columnar: rows the columns answer
    residue_rows: int | None = None     # columnar: per-row fallback rows
    lines: tuple[str, ...] = field(init=False, default=())

    def __post_init__(self):
        lines = [f"{self.strategy}: {self.reason}"]
        lines.extend(probe.describe() for probe in self.probes)
        if self.residual is not None:
            lines.append(f"residual filter: {self.residual}")
        if self.order_pushdown:
            lines.append("order+limit: heapq top-k pushdown")
        if self.shredded_rows is not None:
            lines.append(f"shredded rows: {self.shredded_rows}")
        if self.residue_rows is not None:
            lines.append(f"residue rows: {self.residue_rows}")
        if self.estimated_rows is not None:
            lines.append(f"estimated rows: ~{self.estimated_rows}")
        if self.actual_rows is not None:
            lines.append(f"actual rows: {self.actual_rows}")
        object.__setattr__(self, "lines", tuple(lines))

    def describe(self) -> str:
        return "\n".join(self.lines)


def _probe_kind(conjunct: Condition,
                paths: frozenset[tuple[str, ...]]) -> str | None:
    """Classify a conjunct the index can answer exactly, else ``None``."""
    if isinstance(conjunct, Eq) and conjunct.steps in paths:
        return "="
    if isinstance(conjunct, Exists) and conjunct.steps in paths:
        return "exists"
    if (isinstance(conjunct, Contains) and conjunct.steps in paths
            and isinstance(conjunct.target, Atom)
            and isinstance(conjunct.target.value, str)):
        return "contains"
    return None


def _split(condition: Condition, paths: frozenset[tuple[str, ...]],
           ) -> tuple[list[tuple[Condition, str]], Condition | None]:
    """NNF + conjunct split: ``(indexable probes, residual condition)``.

    Memoized on the condition instance per covered-path set, so cached
    parsed queries re-plan without re-walking their condition tree.
    """
    cached = getattr(condition, "_split_cache", None)
    if cached is not None and cached[0] == paths:
        return cached[1], cached[2]
    probes: list[tuple[Condition, str]] = []
    residual: Condition | None = None
    for conjunct in conjuncts(nnf(condition)):
        kind = _probe_kind(conjunct, paths)
        if kind is not None:
            probes.append((conjunct, kind))
        else:
            residual = (conjunct if residual is None
                        else And(residual, conjunct))
    try:
        object.__setattr__(condition, "_split_cache",
                           (paths, probes, residual))
    except AttributeError:  # slotted user subclass
        pass
    return probes, residual


def _candidates(conjunct: Condition, kind: str,
                index: "AttrIndex") -> frozenset[Data]:
    if kind == "=":
        return index.equality_candidates(conjunct.steps, conjunct.target)
    if kind == "exists":
        return index.exists_candidates(conjunct.steps)
    return index.contains_candidates(conjunct.steps,
                                     conjunct.target.value)


def _canonical_key(datum: Data) -> tuple:
    return (structural_key(datum.marker), structural_key(datum.object))


def _order_limit(selected: list[Data],
                 order: tuple[Sequence[str], bool] | None,
                 limit: int | None) -> list[Data]:
    """Order/limit over canonically-sorted matches.

    Reproduces the naive semantics exactly: stable sort by the smallest
    reached value, data the path does not reach last in either
    direction, ties in canonical order. With a limit the sort becomes a
    ``heapq`` top-k selection (both heapq selectors are documented
    equivalent to a stable ``sorted(...)[:n]``).
    """
    if order is None:
        return selected if limit is None else selected[:limit]
    steps, descending = order

    if descending:
        # Present data get the *larger* first key so nlargest ranks
        # them before (i.e. missing data after) in descending order.
        def sort_key(datum: Data) -> tuple:
            values = evaluate_path(datum.object, steps, spread=True)
            return (1, structural_key(values[0])) if values else (0,)

        if limit is not None and limit < len(selected):
            return heapq.nlargest(limit, selected, key=sort_key)
        ordered = sorted(selected, key=sort_key, reverse=True)
    else:
        def sort_key(datum: Data) -> tuple:
            values = evaluate_path(datum.object, steps, spread=True)
            return (0, structural_key(values[0])) if values else (1,)

        if limit is not None and limit < len(selected):
            return heapq.nsmallest(limit, selected, key=sort_key)
        ordered = sorted(selected, key=sort_key)
    return ordered if limit is None else ordered[:limit]


def shard_positions(shard: Sequence[Data],
                    condition: Condition | None,
                    order: tuple[Sequence[str], bool] | None = None,
                    limit: int | None = None) -> list[int]:
    """Match positions within one canonical-order shard, with the
    ``order_by`` + ``limit`` pushdown applied shard-locally.

    The unit of work of the parallel executor
    (:mod:`repro.query.parallel`): the parent splits the canonically
    ordered data list into contiguous shards, each worker filters its
    shard with the compiled condition and returns the *positions* of the
    survivors (a few ints cross the process boundary instead of
    re-encoded objects). With a limit, only a top-k superset needs to
    travel: any global top-k element ranks within the top-k of its own
    shard (fewer than k data precede it globally, so fewer than k
    precede it in the shard), and both ``heapq`` selectors are stable —
    equivalent to ``sorted(...)[:k]`` — so shard-local ties keep
    ascending-position order, exactly the canonical tie-break the final
    parent-side :func:`_order_limit` pass uses.
    """
    if condition is None:
        matched = list(range(len(shard)))
    else:
        predicate = compile_condition(condition)
        matched = [position for position, datum in enumerate(shard)
                   if predicate(datum.object)]
    return _limit_positions(shard, matched, order, limit)


def columnar_shard_positions(
        store: "ColumnStore",
        condition: Condition | None,
        order: tuple[Sequence[str], bool] | None = None,
        limit: int | None = None) -> list[int]:
    """:func:`shard_positions` over a shard's column store.

    ``store`` must be tombstone-free (freshly built or decoded from the
    wire, as every executor shard store is), so its positions coincide
    with shard positions. Conditions the columns can't answer — or
    shards whose rows all fell to the residue — degrade to exactly the
    row logic of :func:`shard_positions`.
    """
    rows = store.rows
    if condition is None:
        matched = list(range(store.size))
    else:
        predicate = compile_condition(condition)
        program = (compile_columnar(condition)
                   if store.shredded_count else None)
        if program is not None:
            matched = store.match_positions(program, predicate)
        else:
            matched = [position for position, datum in enumerate(rows)
                       if predicate(datum.object)]
    return _limit_positions(rows, matched, order, limit)


def _limit_positions(rows: Sequence[Data], matched: list[int],
                     order: tuple[Sequence[str], bool] | None,
                     limit: int | None) -> list[int]:
    """The shard-local ``order_by`` + ``limit`` pushdown tail."""
    if order is None:
        return matched if limit is None else matched[:limit]
    if limit is None or limit >= len(matched):
        return matched
    steps, descending = order
    if descending:
        def sort_key(position: int) -> tuple:
            values = evaluate_path(rows[position].object, steps,
                                   spread=True)
            return (1, structural_key(values[0])) if values else (0,)

        return sorted(heapq.nlargest(limit, matched, key=sort_key))

    def sort_key(position: int) -> tuple:
        values = evaluate_path(rows[position].object, steps,
                               spread=True)
        return (0, structural_key(values[0])) if values else (1,)

    return sorted(heapq.nsmallest(limit, matched, key=sort_key))


def _resolve_columns(columns, size: int | None) -> "ColumnStore | None":
    """Resolve a column-store argument into a usable store, or ``None``.

    ``columns`` may be a store, a zero-argument callable producing one
    lazily (the ``_DBState.columns`` bound method), or ``None``. Stores
    that don't cover the data being queried (stale, or a different
    snapshot) and stores with nothing shredded are rejected — the row
    scan is always correct.
    """
    if columns is None:
        return None
    store = columns() if callable(columns) else columns
    if store is None or not store.shredded_count:
        return None
    if size is not None and store.alive_count != size:
        return None
    return store


def select_data(dataset: DataSet,
                condition: Condition | None,
                index: "AttrIndex | None" = None,
                order: tuple[Sequence[str], bool] | None = None,
                limit: int | None = None,
                columns=None) -> list[Data]:
    """Plan and execute a selection; result order matches the naive scan.

    ``index`` must index exactly the data in ``dataset`` (candidate
    sets are defensively intersected with the data set, so a superset
    index still yields correct results). ``columns`` optionally names
    the snapshot's :class:`~repro.store.columnar.ColumnStore` (or a
    lazy callable producing it) for the columnar scan strategy.
    """
    if condition is None:
        selected = list(dataset)
        return _order_limit(selected, order, limit)

    probes: list[tuple[Condition, str]] = []
    residual: Condition | None = condition
    if index is not None and index:
        probes, residual = _split(condition, index.paths)

    if not probes:
        # Compile first: operand validation must surface identically on
        # every scan strategy. The column store only resolves (and a
        # lazy one only builds) when the condition actually compiled.
        predicate = compile_condition(condition)
        program = compile_columnar(condition)
        store = (_resolve_columns(columns, len(dataset))
                 if program is not None else None)
        if store is not None:
            selected = store.matches(program, predicate)
            return _order_limit(selected, order, limit)
        selected = [datum for datum in dataset
                    if predicate(datum.object)]
        return _order_limit(selected, order, limit)

    # Residual compiles before probing so operand validation (bad
    # bounds, non-string Contains) surfaces regardless of candidates.
    predicate = (compile_condition(residual)
                 if residual is not None else None)
    sets = sorted((_candidates(conjunct, kind, index)
                   for conjunct, kind in probes), key=len)
    candidates: set[Data] = set(sets[0])
    for other in sets[1:]:
        candidates &= other
        if not candidates:
            break
    matched = [datum for datum in candidates
               if datum in dataset
               and (predicate is None or predicate(datum.object))]
    matched.sort(key=_canonical_key)
    return _order_limit(matched, order, limit)


def _scan_plan(condition: Condition, reason: str, pushdown: bool,
               columns, size: int | None) -> Plan:
    """The scan strategy :func:`select_data` would fall back to."""
    program = compile_columnar(condition)
    store = (_resolve_columns(columns, size)
             if program is not None else None)
    if store is not None:
        # Running the program *is* the estimate (bitset popcounts are
        # cheap), and it warms the column memos the execution reuses.
        true_bits, maybe_bits = program(store)
        estimated = (true_bits.bit_count()
                     + (maybe_bits | store.residue_mask).bit_count())
        return Plan(strategy="columnar", residual=repr(condition),
                    order_pushdown=pushdown,
                    estimated_rows=estimated,
                    shredded_rows=store.shredded_count,
                    residue_rows=store.residue_count,
                    reason=f"{reason}: bitset scan over "
                           f"{store.shredded_count} shredded rows, "
                           f"row fallback on {store.residue_count} "
                           f"residue rows")
    return Plan(strategy="row-scan", residual=repr(condition),
                order_pushdown=pushdown, estimated_rows=size,
                reason=f"{reason}: compiled full scan")


def explain_plan(condition: Condition | None,
                 index: "AttrIndex | None" = None,
                 order: tuple[Sequence[str], bool] | None = None,
                 limit: int | None = None,
                 columns=None,
                 size: int | None = None) -> Plan:
    """The plan :func:`select_data` would choose, without executing it.

    ``estimated_rows`` is an upper bound: exact for index probes and
    definite columnar matches, plus every maybe/residue row a per-row
    check could still admit (``size`` for a blind row scan).
    """
    pushdown = order is not None and limit is not None
    if condition is None:
        return Plan(strategy="row-scan", order_pushdown=pushdown,
                    estimated_rows=size,
                    reason="no condition: every datum matches")
    if index is None or not index:
        return _scan_plan(condition, "no attribute index", pushdown,
                          columns, size)
    probes, residual = _split(condition, index.paths)
    if not probes:
        return _scan_plan(condition, "no indexable conjunct", pushdown,
                          columns, size)
    described = tuple(sorted(
        (Probe(path=".".join(conjunct.steps), op=kind,
               value=(None if kind == "exists"
                      else repr(conjunct.target)),
               selectivity=len(_candidates(conjunct, kind, index)))
         for conjunct, kind in probes),
        key=lambda probe: (probe.selectivity, probe.path)))
    return Plan(strategy="index", probes=described,
                residual=None if residual is None else repr(residual),
                order_pushdown=pushdown,
                estimated_rows=described[0].selectivity,
                reason=f"intersect {len(described)} probe(s), "
                       f"most selective first")


# -- join / aggregate plan nodes -----------------------------------------------


@dataclass(frozen=True)
class JoinPlan:
    """The strategy a :class:`~repro.query.join.JoinQuery` chose.

    ``left``/``right`` are the per-side selection plans; the build side
    is the one hashed into the key map (chosen by estimated rows), the
    other side probes it. ``actual_*`` fields are filled by
    ``explain(analyze=True)``.
    """

    strategy: str                     # "hash" or "nested-loop"
    on: tuple[str, ...]
    build: str                        # "left" or "right"
    build_vectorized: bool            # eq-index bulk build vs per-row
    left: Plan
    right: Plan
    estimated_left: int | None = None
    estimated_right: int | None = None
    estimated_pairs: int | None = None
    actual_left: int | None = None
    actual_right: int | None = None
    actual_pairs: int | None = None
    actual_maybe: int | None = None
    lines: tuple[str, ...] = field(init=False, default=())

    def __post_init__(self):
        lines = [f"join[{self.strategy}] on {', '.join(self.on)} "
                 f"(build={self.build}, "
                 f"{'eq-index' if self.build_vectorized else 'per-row'}"
                 f" build)"]
        for name, plan, estimated, actual in (
                ("left", self.left, self.estimated_left,
                 self.actual_left),
                ("right", self.right, self.estimated_right,
                 self.actual_right)):
            detail = f"  {name}: {plan.lines[0]}"
            if estimated is not None:
                detail += f" | estimated rows ~{estimated}"
            if actual is not None:
                detail += f" | actual rows {actual}"
            lines.append(detail)
        if self.estimated_pairs is not None:
            lines.append(f"  estimated pairs: ~{self.estimated_pairs}")
        if self.actual_pairs is not None:
            maybe = (f" ({self.actual_maybe} maybe)"
                     if self.actual_maybe else "")
            lines.append(f"  actual pairs: {self.actual_pairs}{maybe}")
        object.__setattr__(self, "lines", tuple(lines))

    def describe(self) -> str:
        return "\n".join(self.lines)


@dataclass(frozen=True)
class AggregatePlan:
    """The strategy an aggregate/group-by query chose.

    ``source`` is the plan of the underlying selection; the aggregate
    itself runs ``columnar`` (column kernels + per-row fold-in of
    irregular/residue rows) or ``row`` (per-row resolver throughout).
    """

    strategy: str                     # "columnar" or "row"
    operations: tuple[str, ...]       # e.g. ("count(*)", "sum(year)")
    group: str | None
    source: Plan
    estimated_groups: int | None = None
    actual_rows: int | None = None
    actual_groups: int | None = None
    lines: tuple[str, ...] = field(init=False, default=())

    def __post_init__(self):
        header = f"aggregate[{self.strategy}]: {', '.join(self.operations)}"
        if self.group is not None:
            header += f" group by {self.group}"
        lines = [header]
        lines.extend(f"  {line}" for line in self.source.lines)
        if self.estimated_groups is not None:
            lines.append(f"  estimated groups: ~{self.estimated_groups}")
        if self.actual_rows is not None:
            lines.append(f"  actual rows: {self.actual_rows}")
        if self.actual_groups is not None:
            lines.append(f"  actual groups: {self.actual_groups}")
        object.__setattr__(self, "lines", tuple(lines))

    def describe(self) -> str:
        return "\n".join(self.lines)


def choose_build_side(estimated_left: int | None,
                      estimated_right: int | None) -> str:
    """Hash the smaller estimated side; ties and unknowns build right
    (the conventional inner side)."""
    if estimated_left is not None and estimated_right is not None:
        return "left" if estimated_left < estimated_right else "right"
    return "right"


def plan_join(on: Sequence[str],
              left_plan: Plan, right_plan: Plan,
              left_size: int | None, right_size: int | None,
              build_store=None, *, strategy: str = "hash") -> JoinPlan:
    """Cost a join from the per-side selection plans and column
    statistics: build side = smaller estimated side, estimated pairs
    from the build column's distinct-value count when a store is
    available."""
    estimated_left = (left_plan.estimated_rows
                      if left_plan.estimated_rows is not None
                      else left_size)
    estimated_right = (right_plan.estimated_rows
                       if right_plan.estimated_rows is not None
                       else right_size)
    build = choose_build_side(estimated_left, estimated_right)
    estimated_pairs = None
    build_vectorized = build_store is not None
    if (estimated_left is not None and estimated_right is not None):
        cross = estimated_left * estimated_right
        distinct = None
        if build_store is not None:
            from repro.query.paths import parse_path

            column = build_store.column(parse_path(on[0]))
            if column is not None:
                distinct = column.distinct_count()
        estimated_pairs = (cross // max(distinct, 1)
                           if distinct else cross)
    return JoinPlan(strategy=strategy, on=tuple(on), build=build,
                    build_vectorized=build_vectorized,
                    left=left_plan, right=right_plan,
                    estimated_left=estimated_left,
                    estimated_right=estimated_right,
                    estimated_pairs=estimated_pairs)


def plan_aggregate(operations: Sequence[str], group: str | None,
                   source: Plan, store=None) -> AggregatePlan:
    """Cost an aggregate node over its selection plan. The strategy is
    columnar exactly when a usable column store backs the selection;
    estimated groups come from the group column's distinct count."""
    strategy = "columnar" if store is not None else "row"
    estimated_groups = None
    if group is not None:
        if store is not None:
            from repro.query.paths import parse_path

            column = store.column(parse_path(group))
            # +1: the ⊥ group for rows the path does not reach.
            estimated_groups = (column.distinct_count() + 1
                                if column is not None else 1)
    elif store is None:
        estimated_groups = None
    return AggregatePlan(strategy=strategy,
                         operations=tuple(operations), group=group,
                         source=source,
                         estimated_groups=estimated_groups)
