"""Query layer: path expressions, conditions and a textual language.

Fluent API::

    from repro.query import Query, Eq, Ge
    Query(ds).where(Eq("type", "Article") & Ge("year", 1980)) \\
             .select("title").run()

Textual form::

    from repro.query import run_query
    run_query('select title where type = "Article" and year >= 1980', ds)
"""

from repro.query.ast import (
    And,
    Condition,
    Contains,
    Eq,
    Exists,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Query,
)
from repro.query.parser import parse_query, run_query
from repro.query.paths import evaluate_path, parse_path, path_exists

__all__ = [
    "Query", "Condition", "Eq", "Ne", "Lt", "Le", "Gt", "Ge",
    "Exists", "Contains", "And", "Or", "Not",
    "parse_query", "run_query",
    "parse_path", "evaluate_path", "path_exists",
]
