"""Query layer: path expressions, conditions and a textual language.

Fluent API::

    from repro.query import Query, Eq, Ge
    Query(ds).where(Eq("type", "Article") & Ge("year", 1980)) \\
             .select("title").run()

Textual form::

    from repro.query import run_query
    run_query('select title where type = "Article" and year >= 1980', ds)
"""

from repro.query.aggregates import (
    AggregateSpec,
    Bounds,
    Collect,
    Count,
    Max,
    Min,
    Sum,
)
from repro.query.ast import (
    And,
    Condition,
    Contains,
    Eq,
    Exists,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Query,
)
from repro.query.join import JoinQuery, JoinRow
from repro.query.compile import (
    compile_columnar,
    compile_condition,
    invalidation_profile,
)
from repro.query.parallel import ParallelExecutor
from repro.query.parser import (
    QuerySpec,
    parse_query,
    parse_query_spec,
    run_query,
)
from repro.query.paths import (
    evaluate_path,
    iter_path,
    parse_path,
    path_exists,
)
from repro.query.planner import (
    AggregatePlan,
    JoinPlan,
    Plan,
    Probe,
    columnar_shard_positions,
    explain_plan,
    select_data,
)

__all__ = [
    "Query", "Condition", "Eq", "Ne", "Lt", "Le", "Gt", "Ge",
    "Exists", "Contains", "And", "Or", "Not",
    "JoinQuery", "JoinRow",
    "AggregateSpec", "Bounds", "Count", "Sum", "Min", "Max", "Collect",
    "parse_query", "run_query", "parse_query_spec", "QuerySpec",
    "parse_path", "evaluate_path", "iter_path", "path_exists",
    "compile_condition", "compile_columnar", "invalidation_profile",
    "select_data", "explain_plan", "Plan", "Probe",
    "JoinPlan", "AggregatePlan",
    "columnar_shard_positions",
    "ParallelExecutor",
]
