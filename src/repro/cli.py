"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``merge A.bib B.bib [...]`` — merge BibTeX databases with the paper's
  ``∪K``, print the conflict report, emit merged BibTeX (or JSON/text);
* ``convert FILE`` — convert between formats (bib, json, text) inferred
  from extensions or forced with ``--from``/``--to``;
* ``query FILE "select ..."`` — run a textual query against a file
  (selections, aggregates with ``group by``, and — with
  ``--join QUERY --on PATH`` — hash joins of two selections);
* ``diff A.bib B.bib`` / ``intersect A.bib B.bib`` — the other two
  operations;
* ``sync BASE MINE THEIRS`` — three-way, ancestor-aware merge;
* ``changes OLD NEW`` — entry-level diff between two versions;
* ``describe FILE`` — inferred schema and merge-key advice;
* ``rules PROGRAM FILE`` — run a rule program over a data file;
* ``snapshot save|load|convert`` — persist a database snapshot
  (``--format json|binary``; binary snapshots carry the key/attribute
  indexes and load index-warm);
* ``wal info|compact|recover`` — inspect a durable store's write-ahead
  log, fold it into the snapshot, or emit the contents as of any
  logged generation (point-in-time recovery);
* ``experiments [ids...]`` — alias for ``python -m repro.harness``.

All commands read/write the three interchange formats through the same
loaders, so ``repro convert library.bib --to json`` and
``repro query library.json 'select title where year >= 1990'`` compose.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.bibtex import dataset_to_bibtex, parse_bib_source
from repro.core.data import DataSet
from repro.core.errors import ReproError
from repro.json_codec import dumps_dataset, loads_dataset
from repro.merge import MergeEngine, MergeSpec
from repro.query.parser import run_query
from repro.text import format_dataset, parse_dataset

__all__ = ["main"]

_FORMATS = ("bib", "json", "text")
_EXTENSIONS = {".bib": "bib", ".json": "json", ".txt": "text",
               ".ssd": "text"}


def _detect_format(path: str, forced: str | None) -> str:
    if forced:
        return forced
    suffix = Path(path).suffix.lower()
    if suffix in _EXTENSIONS:
        return _EXTENSIONS[suffix]
    raise ReproError(
        f"cannot infer format of {path!r}; pass --from/--to "
        f"({', '.join(_FORMATS)})")


def _load(path: str, forced: str | None = None) -> DataSet:
    source = Path(path).read_text()
    name = _detect_format(path, forced)
    if name == "bib":
        return parse_bib_source(source)
    if name == "json":
        return loads_dataset(source)
    return parse_dataset(source)


def _render(dataset: DataSet, name: str, on_conflict: str) -> str:
    if name == "bib":
        return dataset_to_bibtex(dataset, on_conflict=on_conflict)
    if name == "json":
        return dumps_dataset(dataset, indent=2)
    return format_dataset(dataset, indent=2)


def _emit(dataset: DataSet, args: argparse.Namespace) -> None:
    text = _render(dataset, args.to, getattr(args, "on_conflict",
                                             "comment"))
    if args.output:
        Path(args.output).write_text(text + "\n")
    else:
        print(text)


def _key(args: argparse.Namespace) -> frozenset[str]:
    return frozenset(args.key.split(","))


def _cmd_merge(args: argparse.Namespace) -> int:
    engine = MergeEngine(MergeSpec(default_key=_key(args),
                                   strategy=args.strategy,
                                   parallel=args.parallel))
    for index, path in enumerate(args.files):
        engine.add_source(f"source{index}:{Path(path).name}",
                          _load(path, args.from_format))
    result = engine.merge()
    stats = result.stats
    print(f"# merged {stats.input_data} entries from {stats.sources} "
          f"sources into {stats.output_data} "
          f"({stats.merged_groups} combined, {stats.conflicts} "
          f"conflicts, {stats.gaps} gaps)", file=sys.stderr)
    for conflict in result.conflicts:
        alternatives = " | ".join(repr(a) for a in conflict.alternatives)
        print(f"# conflict {conflict.location()}: {alternatives}",
              file=sys.stderr)
    _emit(result.dataset, args)
    return 0


def _binary_op(args: argparse.Namespace, operation: str) -> int:
    first = _load(args.files[0], args.from_format)
    second = _load(args.files[1], args.from_format)
    key = _key(args)
    if operation == "diff":
        result = first.difference(second, key)
    else:
        result = first.intersection(second, key)
    _emit(result, args)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    _emit(_load(args.file, args.from_format), args)
    return 0


def _format_value(value: object) -> str:
    from repro.core.objects import SSObject
    from repro.text import format_object

    if isinstance(value, SSObject):
        return format_object(value)
    return repr(value)


def _render_aggregate(result: dict) -> str:
    """Render an aggregate result (possibly grouped) as text.

    Ungrouped results map ``label -> value``; grouped results map
    ``group key (an object) -> {label: value}``. Values may be plain
    scalars, :class:`~repro.query.aggregates.Bounds` intervals, or
    or-valued objects — all partiality stays visible in the output.
    """
    lines = []
    for key, value in result.items():
        if isinstance(key, str):
            lines.append(f"{key} = {_format_value(value)}")
        else:
            lines.append(f"group {_format_value(key)}:")
            for name, inner in value.items():
                lines.append(f"  {name} = {_format_value(inner)}")
    return "\n".join(lines)


def _render_join_rows(rows) -> str:
    """Render join output, one left/right pair per line.

    ``?`` flags a *maybe* pair — one that matches only under some
    resolution of an or-value or ⊥ on a join path.
    """
    from repro.text import format_data

    lines = []
    for row in rows:
        flag = "? " if row.maybe else "  "
        lines.append(f"{flag}{format_data(row.left)}  |x|  "
                     f"{format_data(row.right)}")
    return "\n".join(lines)


def _print(text: str, args: argparse.Namespace) -> None:
    if args.output:
        Path(args.output).write_text(text + "\n")
    else:
        print(text)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.query.parser import parse_query_spec

    dataset = _load(args.file, args.from_format)
    if args.join and not args.on:
        raise ReproError("--join requires at least one --on key path")
    if args.on and not args.join:
        raise ReproError("--on only applies with --join")
    if args.join:
        # Two selections of the same store joined on key path(s);
        # explain renders the JoinPlan (build/probe, est vs actual).
        from repro.store.database import Database

        with Database(dataset, index_paths=args.index or ()) as database:
            on = tuple(args.on)
            if args.explain:
                plan = database.explain_join(args.query, args.join, on,
                                             analyze=True)
                print(plan.describe())
                return 0
            rows = database.join_query(args.query, args.join, on)
            _print(_render_join_rows(rows), args)
        return 0
    if args.explain:
        # The plan sees exactly what execution would: the database's
        # attribute index and columnar shredding.
        from repro.store.database import Database

        with Database(dataset, index_paths=args.index or ()) as database:
            print(database.explain(args.query, analyze=True).describe())
        return 0
    is_aggregate = parse_query_spec(args.query).is_aggregate
    if args.index or args.parallel:
        # Route through a Database so the query gets the planner's
        # attribute-index probes and/or the sharded parallel executor.
        from repro.store.database import Database

        with Database(dataset, index_paths=args.index or ()) as database:
            result = database.query(args.query, parallel=args.parallel)
            if is_aggregate:
                _print(_render_aggregate(result), args)
            else:
                _emit(result, args)
    else:
        result = run_query(args.query, dataset)
        if is_aggregate:
            _print(_render_aggregate(result), args)
        else:
            _emit(result, args)
    return 0


def _cmd_sync(args: argparse.Namespace) -> int:
    from repro.merge.sync import sync

    base, mine, theirs = (_load(path, args.from_format)
                          for path in args.files)
    result = sync(base, mine, theirs, _key(args))
    print(f"# sync: {result.added} added, {result.deleted} deleted, "
          f"{result.modified} modified, {len(result.conflicts)} "
          f"conflicts", file=sys.stderr)
    for conflict in result.conflicts:
        print(f"# {conflict.describe()}", file=sys.stderr)
    _emit(result.dataset, args)
    return 0


def _cmd_changes(args: argparse.Namespace) -> int:
    from repro.merge.report import change_report, render_report

    old = _load(args.files[0], args.from_format)
    new = _load(args.files[1], args.from_format)
    report = change_report(old, new, _key(args))
    print(render_report(report))
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.rules import Engine, parse_program
    from repro.text import format_object

    program = parse_program(Path(args.program).read_text())
    engine = Engine(program)
    engine.load_dataset("entry", _load(args.file, args.from_format))
    predicates = args.predicate or sorted(program.predicates())
    for predicate in predicates:
        rows = sorted(engine.facts(predicate), key=repr)
        print(f"{predicate}: {len(rows)} facts")
        for row in rows:
            rendered = ", ".join(format_object(value) for value in row)
            print(f"  {predicate}({rendered})")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.schema import infer_schema, suggest_key

    schema = infer_schema(_load(args.file, args.from_format))
    print(schema.describe())
    for name in schema.class_names():
        suggested = suggest_key(schema.classes[name])
        if suggested:
            print(f"suggested key for {name}: "
                  f"{{{', '.join(suggested)}}}")
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    from repro.store.database import Database

    dataset = _load(args.file, args.from_format)
    database = Database(dataset, index_paths=tuple(args.index or ()))
    database.save(args.snapshot, format=args.format)
    print(f"# saved {len(database)} entries to {args.snapshot} "
          f"({args.format})", file=sys.stderr)
    return 0


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    from repro.store.database import Database

    database = Database.load(args.snapshot)
    print(f"# loaded {len(database)} entries from {args.snapshot}",
          file=sys.stderr)
    _emit(database.snapshot(), args)
    return 0


def _cmd_snapshot_convert(args: argparse.Namespace) -> int:
    from repro.store.database import Database

    database = Database.load(args.snapshot)
    database.save(args.dest, format=args.format)
    print(f"# converted {args.snapshot} -> {args.dest} ({args.format})",
          file=sys.stderr)
    return 0


def _cmd_wal_info(args: argparse.Namespace) -> int:
    from repro.store.database import Database
    from repro.store.wal import scan_wal, wal_path

    snapshot = Path(args.snapshot)
    if snapshot.exists():
        generation = Database.load(snapshot).generation
        print(f"snapshot: {snapshot} (generation {generation}, "
              f"{snapshot.stat().st_size} bytes)")
    else:
        print(f"snapshot: {snapshot} (absent; recovery replays onto an "
              f"empty store)")
    log_path = wal_path(snapshot)
    scan = scan_wal(log_path)
    if not scan.exists:
        print(f"log: {log_path} (absent)")
        return 0
    if not scan.header_valid:
        print(f"log: {log_path} (corrupt header; {scan.file_size} "
              f"bytes ignored)")
        return 0
    torn = scan.file_size - scan.valid_length
    print(f"log: {log_path} (base generation {scan.base_generation}, "
          f"{len(scan.frames)} frames, {scan.valid_length} bytes"
          + (f", {torn} torn tail bytes" if torn else "") + ")")
    for frame in scan.frames:
        print(f"  generation {frame.generation}: "
              f"-{len(frame.removed)}/+{len(frame.added)}")
    print(f"last recoverable generation: {scan.last_generation}")
    return 0


def _cmd_wal_compact(args: argparse.Namespace) -> int:
    from repro.store.database import Database
    from repro.store.wal import wal_path

    with Database.open(args.snapshot, auto_compact=False) as database:
        generation = database.generation
        database.compact()
    log_size = wal_path(args.snapshot).stat().st_size
    print(f"# compacted {args.snapshot} at generation {generation} "
          f"(log now {log_size} bytes)", file=sys.stderr)
    return 0


def _cmd_wal_recover(args: argparse.Namespace) -> int:
    from repro.store.database import Database

    database = Database.recover_to(args.snapshot, args.generation)
    print(f"# recovered {len(database)} entries as of generation "
          f"{database.generation}", file=sys.stderr)
    if args.save:
        database.save(args.save, format=args.format)
        print(f"# saved to {args.save} ({args.format})",
              file=sys.stderr)
        return 0
    _emit(database.snapshot(), args)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.harness.runner import main as harness_main

    return harness_main(args.ids)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Manipulate semistructured data with partial and "
                    "inconsistent information (Liu & Ling, EDBT 2000).")
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser, single_file: bool,
               minimum: int = 2) -> None:
        if single_file:
            sub.add_argument("file", help="input file")
        else:
            sub.add_argument("files", nargs="+" if minimum == 1 else None,
                             help="input files")
        sub.add_argument("--from", dest="from_format", choices=_FORMATS,
                         help="force the input format")
        sub.add_argument("--to", choices=_FORMATS, default="text",
                         help="output format (default: text)")
        sub.add_argument("-o", "--output", help="write to a file")

    merge = commands.add_parser(
        "merge", help="union several sources (records conflicts)")
    merge.add_argument("files", nargs="+", help="input files")
    merge.add_argument("--from", dest="from_format", choices=_FORMATS)
    merge.add_argument("--to", choices=_FORMATS, default="bib")
    merge.add_argument("-o", "--output")
    merge.add_argument("--key", default="type,title",
                       help="comma-separated key attributes "
                            "(default: type,title)")
    merge.add_argument("--on-conflict", choices=("error", "comment"),
                       default="comment",
                       help="BibTeX rendering of or-values")
    merge.add_argument("--strategy",
                       choices=("naive", "indexed", "blocked"),
                       default="blocked",
                       help="fold organization (identical results; "
                            "default: blocked)")
    merge.add_argument("--parallel", type=int, default=0, metavar="N",
                       help="merge signature blocks on N worker "
                            "processes (default: 0, sequential)")
    merge.set_defaults(handler=_cmd_merge)

    for name, help_text in (("diff", "first source minus the second"),
                            ("intersect", "common information")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("files", nargs=2, help="two input files")
        sub.add_argument("--from", dest="from_format", choices=_FORMATS)
        sub.add_argument("--to", choices=_FORMATS, default="text")
        sub.add_argument("-o", "--output")
        sub.add_argument("--key", default="type,title")
        sub.set_defaults(handler=lambda args, _name=name:
                         _binary_op(args, _name))

    convert = commands.add_parser("convert",
                                  help="convert between formats")
    common(convert, single_file=True)
    convert.set_defaults(handler=_cmd_convert)

    query = commands.add_parser("query", help="run a textual query")
    query.add_argument("file", help="input file")
    query.add_argument("query", help='e.g. \'select title where '
                                     'year >= 1990\'')
    query.add_argument("--from", dest="from_format", choices=_FORMATS)
    query.add_argument("--to", choices=_FORMATS, default="text")
    query.add_argument("-o", "--output")
    query.add_argument("--index", action="append", metavar="PATH",
                       help="build an attribute index over PATH before "
                            "querying (repeatable)")
    query.add_argument("--parallel", type=int, default=0, metavar="N",
                       help="fan the scan phase out over N shard "
                            "workers (0 = sequential)")
    query.add_argument("--explain", action="store_true",
                       help="print the physical plan (strategy, "
                            "estimated and actual rows) instead of "
                            "the results")
    query.add_argument("--join", metavar="QUERY",
                       help="a second 'select ...' over the same file; "
                            "hash-join its rows with the main query's "
                            "on the --on key path(s)")
    query.add_argument("--on", action="append", metavar="PATH",
                       help="join key path (repeatable; required with "
                            "--join)")
    query.set_defaults(handler=_cmd_query)

    sync_cmd = commands.add_parser(
        "sync", help="three-way merge: base, mine, theirs")
    sync_cmd.add_argument("files", nargs=3,
                          help="ancestor, my version, their version")
    sync_cmd.add_argument("--from", dest="from_format", choices=_FORMATS)
    sync_cmd.add_argument("--to", choices=_FORMATS, default="text")
    sync_cmd.add_argument("-o", "--output")
    sync_cmd.add_argument("--key", default="type,title")
    sync_cmd.set_defaults(handler=_cmd_sync)

    changes = commands.add_parser(
        "changes", help="entry-level diff between two versions")
    changes.add_argument("files", nargs=2, help="old and new file")
    changes.add_argument("--from", dest="from_format", choices=_FORMATS)
    changes.add_argument("--key", default="type,title")
    changes.set_defaults(handler=_cmd_changes)

    rules = commands.add_parser(
        "rules", help="run a rule program against a data file")
    rules.add_argument("program", help="rules file (.rules)")
    rules.add_argument("file", help="data file loaded as entry(M, O)")
    rules.add_argument("--from", dest="from_format", choices=_FORMATS)
    rules.add_argument("--predicate", action="append", default=None,
                       help="print only these derived predicates "
                            "(repeatable; default: all heads)")
    rules.set_defaults(handler=_cmd_rules)

    describe = commands.add_parser(
        "describe", help="infer and print the structural schema")
    describe.add_argument("file", help="input file")
    describe.add_argument("--from", dest="from_format", choices=_FORMATS)
    describe.set_defaults(handler=_cmd_describe)

    snapshot = commands.add_parser(
        "snapshot", help="save/load/convert database snapshots")
    snapshot_commands = snapshot.add_subparsers(dest="snapshot_command",
                                                required=True)

    snap_save = snapshot_commands.add_parser(
        "save", help="build a database from an interchange file and "
                     "persist it")
    snap_save.add_argument("file", help="input file (bib, json, text)")
    snap_save.add_argument("snapshot", help="snapshot file to write")
    snap_save.add_argument("--from", dest="from_format", choices=_FORMATS,
                           help="force the input format")
    snap_save.add_argument("--format", choices=("json", "binary"),
                           default="binary",
                           help="snapshot format (default: binary)")
    snap_save.add_argument("--index", action="append", metavar="PATH",
                           help="attribute path to index before saving "
                                "(repeatable; binary snapshots persist "
                                "the index)")
    snap_save.set_defaults(handler=_cmd_snapshot_save)

    snap_load = snapshot_commands.add_parser(
        "load", help="load a snapshot and emit its contents")
    snap_load.add_argument("snapshot", help="snapshot file "
                                            "(format auto-detected)")
    snap_load.add_argument("--to", choices=_FORMATS, default="text",
                           help="output format (default: text)")
    snap_load.add_argument("-o", "--output", help="write to a file")
    snap_load.set_defaults(handler=_cmd_snapshot_load)

    snap_convert = snapshot_commands.add_parser(
        "convert", help="re-encode a snapshot in the other format")
    snap_convert.add_argument("snapshot", help="source snapshot "
                                               "(format auto-detected)")
    snap_convert.add_argument("dest", help="destination snapshot file")
    snap_convert.add_argument("--format", choices=("json", "binary"),
                              required=True,
                              help="destination format")
    snap_convert.set_defaults(handler=_cmd_snapshot_convert)

    wal = commands.add_parser(
        "wal", help="inspect/compact/recover a durable store's "
                    "write-ahead log")
    wal_commands = wal.add_subparsers(dest="wal_command", required=True)

    wal_info = wal_commands.add_parser(
        "info", help="show the log's frames and recoverable range")
    wal_info.add_argument("snapshot", help="durable snapshot path "
                                           "(log lives at <path>.wal)")
    wal_info.set_defaults(handler=_cmd_wal_info)

    wal_compact = wal_commands.add_parser(
        "compact", help="fold the log into the snapshot and truncate "
                        "it")
    wal_compact.add_argument("snapshot", help="durable snapshot path")
    wal_compact.set_defaults(handler=_cmd_wal_compact)

    wal_recover = wal_commands.add_parser(
        "recover", help="emit the store as of a logged generation")
    wal_recover.add_argument("snapshot", help="durable snapshot path")
    wal_recover.add_argument("--generation", type=int, default=None,
                             help="target generation (default: the "
                                  "last intact frame)")
    wal_recover.add_argument("--to", choices=_FORMATS, default="text",
                             help="output format (default: text)")
    wal_recover.add_argument("-o", "--output", help="write to a file")
    wal_recover.add_argument("--save", metavar="SNAPSHOT",
                             help="instead of emitting, save the "
                                  "recovered state as a new snapshot")
    wal_recover.add_argument("--format", choices=("json", "binary"),
                             default="binary",
                             help="format for --save "
                                  "(default: binary)")
    wal_recover.set_defaults(handler=_cmd_wal_recover)

    experiments = commands.add_parser(
        "experiments", help="run the reproduction experiments")
    experiments.add_argument("ids", nargs="*")
    experiments.set_defaults(handler=_cmd_experiments)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream consumer (head, less) closed the pipe: not an error.
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
