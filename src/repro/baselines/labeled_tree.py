"""The edge-labeled tree baseline.

The second data model the paper cites as insufficient is the labeled-tree
model of Buneman et al. (ICDT 1997 / SIGMOD 1996): data is a tree whose
edges carry labels and whose leaves carry values. Like OEM it has no
``⊥``, no or-values and no open/closed set distinction; unlike OEM it has
no object identity either, so "same entity" can only mean "same subtree".

:func:`naive_merge` implements the natural tree merge: trees with equal
key-edge leaf values merge edge-wise; when both sides have an edge with
the same label but different leaf values, **both** edges are kept as
duplicates. Nothing distinguishes "two values of a set-valued property"
from "a conflict about a single-valued property" — the ambiguity the
paper's or-values exist to remove. The benchmarks count these ambiguous
duplicate edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from repro.core.data import DataSet
from repro.core.objects import (
    Atom,
    Bottom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.core.order import sort_objects

LeafValue = Union[str, int, float, bool]


@dataclass
class TreeNode:
    """A node of an edge-labeled tree.

    Leaves carry ``value``; internal nodes carry ``edges`` — a list of
    ``(label, child)`` pairs. Duplicate labels are allowed (that is the
    point of the model).
    """

    value: LeafValue | None = None
    edges: list[tuple[str, "TreeNode"]] = field(default_factory=list)

    def is_leaf(self) -> bool:
        return self.value is not None

    def add_edge(self, label: str, child: "TreeNode") -> None:
        self.edges.append((label, child))

    def children(self, label: str) -> list["TreeNode"]:
        """All children reached by edges with the given label."""
        return [child for edge_label, child in self.edges
                if edge_label == label]

    def first(self, label: str) -> "TreeNode | None":
        targets = self.children(label)
        return targets[0] if targets else None

    def leaves(self) -> Iterator[LeafValue]:
        """Every leaf value in the subtree."""
        if self.is_leaf():
            yield self.value
        for _, child in self.edges:
            yield from child.leaves()

    def duplicate_label_count(self) -> int:
        """Number of label collisions among direct edges, plus the
        subtrees' — the model's ambiguity measure."""
        labels = [label for label, _ in self.edges]
        collisions = len(labels) - len(set(labels))
        return collisions + sum(
            child.duplicate_label_count() for _, child in self.edges)


def from_model_object(obj: SSObject) -> TreeNode | None:
    """Encode a model object as a tree; documents the loss.

    ``⊥`` vanishes; an or-value keeps its structurally-first disjunct;
    set elements hang off ``element`` edges with the open/closed
    distinction erased; markers become string leaves.
    """
    if isinstance(obj, Bottom):
        return None
    if isinstance(obj, Atom):
        return TreeNode(value=obj.value)
    if isinstance(obj, Marker):
        return TreeNode(value=obj.name)
    if isinstance(obj, OrValue):
        return from_model_object(sort_objects(obj.disjuncts)[0])
    if isinstance(obj, (PartialSet, CompleteSet)):
        node = TreeNode()
        for element in obj:
            child = from_model_object(element)
            if child is not None:
                node.add_edge("element", child)
        return node
    if isinstance(obj, Tuple):
        node = TreeNode()
        for label, value in obj.items():
            child = from_model_object(value)
            if child is not None:
                node.add_edge(label, child)
        return node
    raise TypeError(f"not a model object: {type(obj).__name__}")


def from_dataset(dataset: DataSet, root_label: str = "entry") -> TreeNode:
    """Encode a data set as a single tree with one edge per datum."""
    root = TreeNode()
    for datum in dataset:
        child = from_model_object(datum.object)
        if child is not None:
            root.add_edge(root_label, child)
    return root


def _key_signature(node: TreeNode,
                   key: Iterable[str]) -> tuple | None:
    signature = []
    for attr in sorted(key):
        child = node.first(attr)
        if child is None or not child.is_leaf():
            return None
        signature.append((attr, child.value))
    return tuple(signature)


def naive_merge(first: TreeNode, second: TreeNode,
                key: Iterable[str], root_label: str = "entry") -> TreeNode:
    """Merge two data-set trees on equal key signatures.

    Matching entries merge edge-wise: edges only on one side pass through;
    same-label edges with equal leaf values dedup; same-label edges with
    *different* leaf values are both kept (an ambiguous duplicate). The
    result's :meth:`TreeNode.duplicate_label_count` measures how much
    un-flagged ambiguity the merge produced.
    """
    key = list(key)
    merged = TreeNode()
    second_entries = second.children(root_label)
    second_signatures: dict[tuple, list[TreeNode]] = {}
    for entry in second_entries:
        signature = _key_signature(entry, key)
        if signature is not None:
            second_signatures.setdefault(signature, []).append(entry)
    matched: set[int] = set()
    for entry in first.children(root_label):
        signature = _key_signature(entry, key)
        partners = second_signatures.get(signature, []) \
            if signature is not None else []
        if not partners:
            merged.add_edge(root_label, entry)
            continue
        for partner in partners:
            matched.add(id(partner))
            merged.add_edge(root_label, _merge_entries(entry, partner))
    for entry in second_entries:
        if id(entry) not in matched:
            merged.add_edge(root_label, entry)
    return merged


def _merge_entries(left: TreeNode, right: TreeNode) -> TreeNode:
    node = TreeNode()
    for label, child in left.edges:
        node.add_edge(label, child)
    for label, child in right.edges:
        if not any(_same_subtree(child, existing)
                   for existing in node.children(label)):
            node.add_edge(label, child)
    return node


def _same_subtree(a: TreeNode, b: TreeNode) -> bool:
    if a.is_leaf() or b.is_leaf():
        return a.value == b.value
    if len(a.edges) != len(b.edges):
        return False
    return all(
        label_a == label_b and _same_subtree(child_a, child_b)
        for (label_a, child_a), (label_b, child_b)
        in zip(sorted_edges(a), sorted_edges(b))
    )


def sorted_edges(node: TreeNode) -> list[tuple[str, TreeNode]]:
    """Edges sorted by label then leaf value, for order-insensitive
    comparison."""
    return sorted(node.edges,
                  key=lambda edge: (edge[0], str(edge[1].value)))
