"""Information-preservation metrics for the model-comparison experiments.

The paper's qualitative claim — "our semistructured data model can capture
more information than OEM and the labeled tree model" — becomes measurable
here. For a merge result in each model we count:

* **conflicts flagged**: attribute positions whose disagreement is
  explicitly recorded (or-values in our model; by construction zero in
  OEM, where a side is silently picked; labeled trees instead produce
  *ambiguous duplicates*, counted separately);
* **atom retention**: how many distinct source atomic values survive into
  the merge result;
* **openness**: whether the open/closed set distinction survived.

:func:`compare_merges` runs the same two sources through all three models
and returns one :class:`MergeComparison` row, which benchmark S2 prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.baselines import labeled_tree, oem
from repro.core.data import DataSet
from repro.core.objects import Atom, Marker, OrValue, SSObject
from repro.core.visitor import walk

__all__ = [
    "ModelReport", "MergeComparison", "dataset_report", "source_atoms",
    "compare_merges",
]


@dataclass(frozen=True)
class ModelReport:
    """What one model's merge result managed to represent."""

    atoms_retained: int
    conflicts_flagged: int
    ambiguous_duplicates: int
    openness_preserved: bool


@dataclass(frozen=True)
class MergeComparison:
    """One row of the S2 comparison table."""

    source_atoms: int
    model: ModelReport
    oem: ModelReport
    tree: ModelReport

    def retention(self, report: ModelReport) -> float:
        """Fraction of source atoms the given model retained."""
        if self.source_atoms == 0:
            return 1.0
        return report.atoms_retained / self.source_atoms


def _atom_values(objects: Iterable[SSObject]) -> set:
    values = set()
    for obj in objects:
        for _, node in walk(obj):
            if isinstance(node, Atom):
                values.add((type(node.value).__name__, node.value))
            elif isinstance(node, Marker):
                # Markers embedded in objects carry information too; OEM
                # and trees flatten them to strings, so compare on that.
                values.add(("str", node.name))
    return values


def source_atoms(first: DataSet, second: DataSet) -> set:
    """Distinct atomic values present in either source's objects."""
    return _atom_values(
        [d.object for d in first] + [d.object for d in second])


def dataset_report(result: DataSet) -> ModelReport:
    """Report for a merge result in the paper's model."""
    atoms = _atom_values(d.object for d in result)
    conflicts = 0
    openness = False
    for datum in result:
        for _, node in walk(datum.object):
            if isinstance(node, OrValue):
                conflicts += 1
            if node.kind in ("partial_set", "complete_set"):
                openness = True
    return ModelReport(
        atoms_retained=len(atoms),
        conflicts_flagged=conflicts,
        ambiguous_duplicates=0,
        openness_preserved=openness,
    )


def oem_report(db: oem.OemDatabase) -> ModelReport:
    """Report for an OEM merge result."""
    atoms = {(type(v).__name__, v) for v in db.atoms()}
    return ModelReport(
        atoms_retained=len(atoms),
        conflicts_flagged=0,          # OEM has no conflict construct.
        ambiguous_duplicates=0,
        openness_preserved=False,     # no partial/complete distinction.
    )


def tree_report(root: labeled_tree.TreeNode) -> ModelReport:
    """Report for a labeled-tree merge result."""
    atoms = {(type(v).__name__, v) for v in root.leaves()}
    return ModelReport(
        atoms_retained=len(atoms),
        conflicts_flagged=0,          # duplicates are not flagged conflicts.
        ambiguous_duplicates=root.duplicate_label_count(),
        openness_preserved=False,
    )


def compare_merges(first: DataSet, second: DataSet,
                   key: Iterable[str]) -> MergeComparison:
    """Merge the two sources in all three models and compare.

    The paper's model uses ``∪K``; OEM and the tree model use their naive
    key-matching merges. All three see byte-identical source data.
    """
    key = list(key)
    model_result = first.union(second, key)

    oem_first = oem.from_dataset(first)
    oem_second = oem.from_dataset(second)
    oem_result = oem.naive_merge(oem_first, oem_second, key)

    tree_first = labeled_tree.from_dataset(first)
    tree_second = labeled_tree.from_dataset(second)
    tree_result = labeled_tree.naive_merge(tree_first, tree_second, key)

    return MergeComparison(
        source_atoms=len(source_atoms(first, second)),
        model=dataset_report(model_result),
        oem=oem_report(oem_result),
        tree=tree_report(tree_result),
    )
