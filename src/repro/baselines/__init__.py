"""Baseline data models the paper compares against, plus metrics.

* :mod:`repro.baselines.oem` — the Object Exchange Model (graph-based);
* :mod:`repro.baselines.labeled_tree` — the edge-labeled tree model;
* :mod:`repro.baselines.metrics` — information-preservation measurements
  used by the S2 comparison benchmark.

Both baselines include the *naive merge* a system without partial sets,
``⊥`` and or-values performs, so experiments can quantify exactly what the
paper's model adds.
"""

from repro.baselines import labeled_tree, metrics, oem
from repro.baselines.metrics import (
    MergeComparison,
    ModelReport,
    compare_merges,
    dataset_report,
    source_atoms,
)

__all__ = [
    "oem", "labeled_tree", "metrics",
    "ModelReport", "MergeComparison", "compare_merges", "dataset_report",
    "source_atoms",
]
