"""The Object Exchange Model (OEM) baseline.

OEM (Papakonstantinou, Garcia-Molina & Widom, ICDE 1995) is the graph
model the paper names as insufficient for partial/inconsistent data: every
object has an identifier, a label and either an atomic value or a set of
sub-objects. There is no ``⊥``, no or-value, and no partial/complete set
distinction.

Two components:

* a faithful little OEM store (:class:`OemObject`, :class:`OemDatabase`)
  with conversion *from* the paper's model — the conversion is necessarily
  lossy, and :func:`from_object` documents exactly what is lost;
* :func:`naive_merge`, the merge a system without the paper's machinery
  performs: match entries on equal key sub-values, then combine attribute
  by attribute keeping the **first** value on disagreement. No conflict is
  recorded; nothing marks the dropped value. The benchmark suite
  quantifies this loss against the model's ``∪K``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from repro.core.data import Data, DataSet
from repro.core.objects import (
    Atom,
    Bottom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)
from repro.core.order import sort_objects

#: An OEM atomic value.
OemValue = Union[str, int, float, bool]


@dataclass
class OemObject:
    """One OEM object: identifier, label, and atomic value *or* children.

    ``value`` is an atomic scalar for leaf objects and ``None`` for complex
    objects, whose ``children`` list holds sub-object identifiers.
    """

    oid: str
    label: str
    value: OemValue | None = None
    children: list[str] = field(default_factory=list)

    def is_atomic(self) -> bool:
        """Return ``True`` for leaf (atomic) objects."""
        return self.value is not None


@dataclass
class OemDatabase:
    """A set of OEM objects with distinguished roots."""

    objects: dict[str, OemObject] = field(default_factory=dict)
    roots: list[str] = field(default_factory=list)
    _counter: itertools.count = field(
        default_factory=lambda: itertools.count(1), repr=False)

    def fresh_oid(self) -> str:
        """Return a new unique object identifier."""
        return f"&o{next(self._counter)}"

    def add(self, label: str, value: OemValue | None = None,
            children: Iterable[str] = ()) -> str:
        """Create an object and return its identifier."""
        oid = self.fresh_oid()
        self.objects[oid] = OemObject(oid, label, value, list(children))
        return oid

    def get(self, oid: str) -> OemObject:
        return self.objects[oid]

    def children_of(self, oid: str) -> list[OemObject]:
        """Resolved child objects, in insertion order."""
        return [self.objects[c] for c in self.objects[oid].children]

    def atoms(self) -> Iterator[OemValue]:
        """Every atomic value reachable in the database."""
        for obj in self.objects.values():
            if obj.is_atomic():
                yield obj.value

    def child_by_label(self, oid: str, label: str) -> OemObject | None:
        """First child of ``oid`` with the given label, if any."""
        for child in self.children_of(oid):
            if child.label == label:
                return child
        return None


def from_object(obj: SSObject, db: OemDatabase, label: str) -> str | None:
    """Encode a model object into ``db``; returns the new oid.

    Loss is deliberate — this is what OEM *can* say:

    * ``⊥`` has no OEM form: returns ``None`` (the attribute vanishes);
    * an or-value keeps only its structurally-first disjunct — exactly the
      "silently pick a side" behaviour the paper criticizes;
    * partial and complete sets both become plain complex objects, erasing
      the open/closed distinction;
    * markers become atomic string values (OEM identifiers are internal
      and cannot double as cross-source names).
    """
    if isinstance(obj, Bottom):
        return None
    if isinstance(obj, Atom):
        return db.add(label, obj.value)
    if isinstance(obj, Marker):
        return db.add(label, obj.name)
    if isinstance(obj, OrValue):
        chosen = sort_objects(obj.disjuncts)[0]
        return from_object(chosen, db, label)
    if isinstance(obj, (PartialSet, CompleteSet)):
        children = [
            from_object(element, db, "element") for element in obj
        ]
        return db.add(label, None,
                      [c for c in children if c is not None])
    if isinstance(obj, Tuple):
        children = []
        for attr, value in obj.items():
            child = from_object(value, db, attr)
            if child is not None:
                children.append(child)
        return db.add(label, None, children)
    raise TypeError(f"not a model object: {type(obj).__name__}")


def from_dataset(dataset: DataSet, label: str = "entry") -> OemDatabase:
    """Encode a whole data set; each datum becomes a root object."""
    db = OemDatabase()
    for datum in dataset:
        oid = from_object(datum.object, db, label)
        if oid is not None:
            db.roots.append(oid)
    return db


def _key_signature(db: OemDatabase, root: str,
                   key: Iterable[str]) -> tuple | None:
    """Atomic key values of a root, or ``None`` when any key part is
    missing or complex (OEM cannot match on it)."""
    signature = []
    for attr in sorted(key):
        child = db.child_by_label(root, attr)
        if child is None or not child.is_atomic():
            return None
        signature.append((attr, child.value))
    return tuple(signature)


def naive_merge(first: OemDatabase, second: OemDatabase,
                key: Iterable[str]) -> OemDatabase:
    """Merge two OEM databases the way a model-unaware system does.

    Roots with equal atomic key signatures are combined: attributes of the
    second root are copied in only when the first root lacks that label.
    Disagreeing values are **silently dropped** — there is no or-value to
    put them in. Unmatched roots pass through.
    """
    merged = OemDatabase()
    key = list(key)
    second_signatures: dict[tuple, list[str]] = {}
    for root in second.roots:
        signature = _key_signature(second, root, key)
        if signature is not None:
            second_signatures.setdefault(signature, []).append(root)
    matched_second: set[str] = set()
    for root in first.roots:
        signature = _key_signature(first, root, key)
        partners = second_signatures.get(signature, []) \
            if signature is not None else []
        if not partners:
            merged.roots.append(_copy_subtree(first, root, merged))
            continue
        for partner in partners:
            matched_second.add(partner)
            merged.roots.append(
                _merge_roots(first, root, second, partner, merged))
    for root in second.roots:
        if root not in matched_second:
            merged.roots.append(_copy_subtree(second, root, merged))
    return merged


def _copy_subtree(source: OemDatabase, oid: str,
                  target: OemDatabase) -> str:
    obj = source.get(oid)
    children = [_copy_subtree(source, child, target)
                for child in obj.children]
    return target.add(obj.label, obj.value, children)


def _merge_roots(first: OemDatabase, left: str, second: OemDatabase,
                 right: str, target: OemDatabase) -> str:
    left_obj = first.get(left)
    children: list[str] = []
    seen_labels: set[str] = set()
    for child in first.children_of(left):
        children.append(_copy_subtree(first, child.oid, target))
        seen_labels.add(child.label)
    for child in second.children_of(right):
        if child.label not in seen_labels:
            children.append(_copy_subtree(second, child.oid, target))
        # else: the second source's value is dropped on the floor.
    return target.add(left_obj.label, left_obj.value, children)
