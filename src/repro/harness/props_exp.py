"""Experiments P1-P4: the paper's propositions, verified empirically.

Where a claim holds, the experiment reports the check counts. Where it
does not — Propositions 3 and 4 fail on specific shapes (see DESIGN.md
D10 and EXPERIMENTS.md) — the experiment reports the violation rates and
the minimal counterexample, and ``reproduced`` reflects whether our
*reconstruction* of the claim behaved as documented (deviations from the
paper's claims are expected findings, not harness failures).
"""

from __future__ import annotations

import random

from repro.core.builder import cset, data, dataset, tup
from repro.core.data import DataSet
from repro.harness.paperdata import SECTION3_KEY, example6_sources
from repro.harness.registry import ExperimentResult, register
from repro.harness.tables import Table
from repro.properties import (
    ObjectGenerator,
    check_commutativity,
    check_containment,
    check_key_monotonicity,
    check_partial_order,
)

#: Sample sizes chosen so the cubic transitivity check stays fast.
P1_SAMPLE = 250
P2_PAIRS = 600
P3_RUNS = 100


@register("P1", "Proposition 1 — ⊴ is a partial order", "§2, Prop. 1")
def run_p1() -> ExperimentResult:
    table = Table(f"axioms over {P1_SAMPLE} random objects "
                  "(seeds 0 and 1)", ["axiom", "checks", "verdict"])
    reproduced = True
    for seed in (0, 1):
        sample = ObjectGenerator(seed=seed).objects(P1_SAMPLE)
        for report in check_partial_order(sample):
            verdict = "holds" if report.holds else "FAILS"
            reproduced &= report.holds
            table.add(f"{report.law} [seed {seed}]", report.checks,
                      verdict)
    return ExperimentResult("P1", "⊴ is a partial order", [table],
                            reproduced=reproduced)


@register("P2", "Proposition 2 — ∪K/∩K commutativity", "§3, Prop. 2")
def run_p2() -> ExperimentResult:
    generator = ObjectGenerator(seed=7)
    pairs = [(generator.object(), generator.object())
             for _ in range(P2_PAIRS)]
    table = Table(f"commutativity over {P2_PAIRS} random pairs",
                  ["law", "checks", "verdict"])
    reproduced = True
    for report in check_commutativity(pairs, {"A", "B"}):
        reproduced &= report.holds
        table.add(report.law, report.checks,
                  "holds" if report.holds else "FAILS")
    return ExperimentResult("P2", "commutativity of ∪K and ∩K", [table],
                            reproduced=reproduced)


def _flat_sources(seed: int) -> tuple[DataSet, DataSet]:
    """Key-consistent, set-free sources (the Example 6 shape)."""
    rng = random.Random(seed)

    def source(prefix: str) -> DataSet:
        return DataSet(
            data(f"{prefix}{index}", tup(
                type="t", title=f"p{index}",
                **{label: rng.choice(["x", "y", "z"])
                   for label in ("a", "b") if rng.random() < 0.8}))
            for index in range(6))

    return source("m"), source("n")


@register("P3", "Proposition 3 — containment laws", "§3, Prop. 3")
def run_p3() -> ExperimentResult:
    key = SECTION3_KEY
    s1, s2 = example6_sources()
    example_table = Table("Proposition 3 on Example 6",
                          ["law", "verdict"])
    reproduced = True
    for report in check_containment(s1, s2, key):
        example_table.add(report.law,
                          "holds" if report.holds else "FAILS")
        reproduced &= report.holds

    flat_failures: dict[str, int] = {}
    pathological_failures: dict[str, int] = {}
    for seed in range(P3_RUNS):
        for report in check_containment(*_flat_sources(seed), key):
            flat_failures.setdefault(report.law, 0)
            if not report.holds:
                flat_failures[report.law] += 1
        generator = ObjectGenerator(seed=seed)
        for report in check_containment(generator.dataset(5),
                                        generator.dataset(5),
                                        {"A", "B"}):
            pathological_failures.setdefault(report.law, 0)
            if not report.holds:
                pathological_failures[report.law] += 1

    rate_table = Table(
        f"violation counts over {P3_RUNS} random source pairs",
        ["law", "flat (set-free) sources", "arbitrary nested objects"])
    for law in flat_failures:
        rate_table.add(law, flat_failures[law],
                       pathological_failures.get(law, 0))
    # Flat sources must satisfy every law for the reproduction to count.
    reproduced &= all(count == 0 for count in flat_failures.values())

    counter_s1 = dataset(("m", tup(A="k", B="b", C=cset("a1", "a2"))))
    counter_s2 = dataset(("n", tup(A="k", B="b", C=cset("a2", "a3"))))
    counter_report = {
        r.law: r for r in check_containment(counter_s1, counter_s2,
                                            {"A", "B"})}
    findings = [
        "all reconstructed laws hold on Example 6 and on set-free data",
        "general failure root cause: Definition 3 orders complete sets "
        "only by equality, so {a2} (an intersection) and {} (a "
        "difference) are not ⊴ their originals",
        "minimal counterexample: S1={m:[A⇒k,B⇒b,C⇒{a1,a2}]}, "
        "S2={n:[A⇒k,B⇒b,C⇒{a2,a3}]} violates S1∩S2 ⊴ S1∪S2: "
        + ("confirmed" if not counter_report[
            "S1 ∩K S2 ⊴ S1 ∪K S2"].holds else "NOT confirmed"),
    ]
    reproduced &= not counter_report["S1 ∩K S2 ⊴ S1 ∪K S2"].holds
    return ExperimentResult("P3", "containment laws of ∪K/∩K/−K",
                            [example_table, rate_table], findings,
                            reproduced)


@register("P4", "Proposition 4 — monotonicity in K", "§3, Prop. 4")
def run_p4() -> ExperimentResult:
    s1, s2 = example6_sources()
    small = SECTION3_KEY
    large = small | {"auth"}
    example_table = Table(
        "Proposition 4 on Example 6 (K1={type,title} ⊆ K2=∪{auth}, "
        "the paper's own instance)", ["law", "verdict"])
    verdicts = {}
    for report in check_key_monotonicity(s1, s2, small, large):
        verdicts[report.law] = report.holds
        example_table.add(report.law,
                          "holds" if report.holds else "FAILS")

    flat_failures: dict[str, int] = {}
    for seed in range(P3_RUNS):
        first, second = _flat_sources(seed)
        for report in check_key_monotonicity(
                first, second, {"type", "title"}, {"type", "title", "a"}):
            flat_failures.setdefault(report.law, 0)
            if not report.holds:
                flat_failures[report.law] += 1
    rate_table = Table(
        f"violations over {P3_RUNS} flat random source pairs",
        ["law", "violations"])
    for law, count in flat_failures.items():
        rate_table.add(law, count)

    findings = [
        "Proposition 4(1) (union) and 4(3) (difference) hold on "
        "Example 6",
        "FINDING: Proposition 4(2) — S1 ∩K1 S2 ⊴ S1 ∩K2 S2 — fails on "
        "the paper's own Example 6, for which the paper explicitly "
        "claims it: ∩K2 keeps only the Oracle entry, leaving the "
        "Datalog/DOOD entries of ∩K1 with no ⊴-witness under "
        "Definition 5",
    ]
    # Expected shape: 4(1) and 4(3) hold, 4(2) fails (the finding).
    expected = (verdicts.get("S1 ∪K2 S2 ⊴ S1 ∪K1 S2") is True
                and verdicts.get("S1 ∩K1 S2 ⊴ S1 ∩K2 S2") is False
                and verdicts.get("S1 −K1 S2 ⊴ S1 −K2 S2") is True)
    return ExperimentResult("P4", "monotonicity in the key set",
                            [example_table, rate_table], findings,
                            reproduced=expected)


@register("P5", "Beyond the paper — associativity of ∪K/∩K",
          "not claimed; studied by this reproduction")
def run_p5() -> ExperimentResult:
    from repro.properties import check_associativity
    from repro.workloads import BibWorkloadSpec, generate_workload

    generator = ObjectGenerator(seed=17)
    triples = [(generator.object(), generator.object(),
                generator.object()) for _ in range(800)]
    object_table = Table("associativity over 800 random object triples",
                         ["law", "violations"])
    object_reports = check_associativity(triples, {"A", "B"})
    for report in object_reports:
        object_table.add(report.law, len(report.counterexamples))

    order_sensitive = 0
    runs = 15
    for seed in range(runs):
        workload = generate_workload(BibWorkloadSpec(
            entries=60, sources=3, overlap=0.5, conflict_rate=0.3,
            partial_author_rate=0.3, seed=seed))
        a, b, c = workload.sources
        key = workload.key
        if a.union(b, key).union(c, key) != a.union(
                b.union(c, key), key):
            order_sensitive += 1
    merge_table = Table(
        "three-source merge order sensitivity (realistic workloads)",
        ["workloads", "order-sensitive results"])
    merge_table.add(runs, order_sensitive)

    # The documented outcome IS non-associativity; a fully associative
    # run would mean the probe lost its teeth.
    reproduced = (not object_reports[0].holds
                  and order_sensitive > 0)
    return ExperimentResult(
        "P5", "associativity study", [object_table, merge_table],
        findings=[
            "FINDING: ∪K and ∩K are commutative (Prop. 2) but NOT "
            "associative — e.g. an empty partial set ⟨⟩ is absorbed by "
            "a partial set it merges with first, but survives inside an "
            "or-value if it first conflicts with an atom; grouping of "
            "or-values from complete-set conflicts also depends on "
            "order",
            "consequently multi-source merging is order-sensitive: the "
            "MergeEngine folds sources in registration order and "
            "documents this; sort sources deterministically for "
            "reproducible merges",
        ],
        reproduced=reproduced)
