"""Command-line runner: ``python -m repro.harness [ids...]``.

Without arguments, runs every registered experiment and prints each
report. With ids (``E6 P4 S2``), runs just those. ``--list`` prints the
experiment index. Exit status is 0 when every run behaved as documented
(including the expected, documented deviations) and 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

# Importing the experiment modules populates the registry.
import repro.harness.examples_exp  # noqa: F401
import repro.harness.props_exp  # noqa: F401
import repro.harness.scale_exp  # noqa: F401
from repro.harness.registry import all_experiments, get_experiment

__all__ = ["main"]


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's examples, propositions and "
                    "scaled experiments.")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("-o", "--output",
                        help="also write the full report to a file")
    return parser.parse_args(argv)


def main(argv: Sequence[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.list:
        for experiment in all_experiments():
            print(f"{experiment.experiment_id:4} {experiment.title} "
                  f"({experiment.paper_ref})")
        return 0
    if args.ids:
        experiments = [get_experiment(identifier)
                       for identifier in args.ids]
    else:
        experiments = all_experiments()
    ok = True
    blocks: list[str] = []
    for experiment in experiments:
        result = experiment.run()
        ok &= result.reproduced
        blocks.append(result.render())
        print(blocks[-1])
        print()
    summary = "all experiments behaved as documented" if ok else \
        "SOME EXPERIMENTS DEVIATED UNEXPECTEDLY"
    footer = f"== {summary} =="
    print(footer)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            "\n\n".join(blocks) + "\n\n" + footer + "\n")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
