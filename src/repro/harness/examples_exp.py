"""Experiments E1-E7: the paper's worked examples, reproduced exactly.

Each experiment evaluates the implementation on the inputs printed in the
paper and checks the outputs cell by cell against the outputs printed in
the paper. A ``match`` column records agreement; ``reproduced`` is the
conjunction.
"""

from __future__ import annotations

from repro.bibtex import parse_bib_source
from repro.core.builder import cset, data, marker, orv, pset, tup
from repro.core.data import Data, DataSet
from repro.core.objects import BOTTOM, SSObject
from repro.core.operations import difference, intersection, union
from repro.harness.paperdata import (
    EXAMPLE1_BIB,
    EXAMPLE2_HTML,
    EXAMPLE2_URL,
    SECTION3_KEY,
    example6_sources,
    section3_sources,
)
from repro.harness.registry import ExperimentResult, register
from repro.harness.tables import Table
from repro.text import format_data, format_object
from repro.web import page_to_data

K = frozenset({"A", "B"})


def _data_table(title: str, expected: DataSet, actual: DataSet) -> Table:
    table = Table(title, ["datum (actual)", "match"])
    expected_set = set(expected)
    for datum in actual:
        table.add(format_data(datum), "yes" if datum in expected_set
                  else "NO")
    return table


@register("E1", "Example 1 — BibTeX cross-reference file", "§2, Example 1")
def run_example1() -> ExperimentResult:
    actual = parse_bib_source(EXAMPLE1_BIB)
    expected = DataSet([
        data("Bob", tup(type="InBook", author=pset("Bob"),
                        title="Oracle", crossref=marker("DB"))),
        data("DB", tup(type="Book", booktitle="Database",
                       editor=cset("John"), year=1999)),
    ])
    table = _data_table("bib file → semistructured data", expected, actual)
    result = ExperimentResult("E1", "Example 1 — BibTeX mapping",
                              [table], reproduced=(actual == expected))
    result.findings.append(
        'paper writes author ⇒ ⟨"Bob"⟩ for "Bob and others" — partial '
        "set reproduced; editor is a complete one-element set (the "
        "paper prints the raw string, we parse names uniformly)")
    return result


@register("E2", "Example 2 — CSDept web page", "§2, Example 2")
def run_example2() -> ExperimentResult:
    actual = page_to_data(EXAMPLE2_URL, EXAMPLE2_HTML)
    expected = Data(marker(EXAMPLE2_URL), tup(
        Title="CSDept",
        People=cset(tup(Faculty=marker("faculty.html")),
                    tup(Staff=marker("staff.html")),
                    tup(Students=marker("students.html"))),
        Programs=marker("programs.html"),
        Research=marker("research.html"),
    ))
    table = Table("web page → semistructured data",
                  ["attribute", "value (actual)", "match"])
    for label, value in actual.object.items():
        table.add(label, format_object(value),
                  "yes" if expected.object.get(label) == value else "NO")
    return ExperimentResult(
        "E2", "Example 2 — web page mapping", [table],
        findings=["the paper's own broken markup (unclosed <li>, '<a>' "
                  "as closing tag) is parsed with browser-style recovery"],
        reproduced=(actual == expected))


def _operation_experiment(experiment_id: str, title: str, op, rows,
                          ) -> ExperimentResult:
    table = Table(f"{title} (K = {{A, B}})",
                  ["O1", "O2", "result", "rule", "match"])
    reproduced = True
    for first, second, expected, rule in rows:
        actual = op(first, second, K)
        match = actual == expected
        reproduced &= match
        table.add(format_object(first), format_object(second),
                  format_object(actual), rule, "yes" if match else "NO")
    return ExperimentResult(experiment_id, title, [table],
                            reproduced=reproduced)


@register("E3", "Example 3 — union table", "§3, Example 3")
def run_example3() -> ExperimentResult:
    from repro.core.objects import Atom

    a = Atom("a")
    a1, a2, a3 = Atom("a1"), Atom("a2"), Atom("a3")
    rows = [
        (a, a, a, "(1)"),
        (cset("a"), cset("a"), cset("a"), "(1)"),
        (tup(C="c"), tup(C="c"), tup(C="c"), "(1)"),
        (a, BOTTOM, a, "(1)"),
        (pset("a"), pset("b"), pset("a", "b"), "(2)"),
        (pset("a1", "a2"), cset("a1", "a2", "a3"),
         cset("a1", "a2", "a3"), "(3)"),
        (tup(A="a1", B="b1", C=pset("c1")),
         tup(A="a1", B="b1", C=cset("c1", "c2")),
         tup(A="a1", B="b1", C=cset("c1", "c2")), "(4)"),
        (a1, a2, orv("a1", "a2"), "(5)"),
        (a1, cset("a1"), orv(a1, cset("a1")), "(5)"),
        (a1, tup(A="a1"), orv(a1, tup(A="a1")), "(5)"),
        (a1, orv("a2", "a3"), orv("a1", "a2", "a3"), "(5)"),
        (cset("a1", "a2"), cset("a1", "a2", "a3"),
         orv(cset("a1", "a2"), cset("a1", "a2", "a3")), "(5)"),
    ]
    return _operation_experiment("E3", "Example 3 — union table", union,
                                 rows)


@register("E4", "Example 4 — intersection table", "§3, Example 4")
def run_example4() -> ExperimentResult:
    from repro.core.objects import Atom

    a = Atom("a")
    a1, a2 = Atom("a1"), Atom("a2")
    rows = [
        (a, a, a, "(1)"),
        (cset("a"), cset("a"), cset("a"), "(1)"),
        (tup(C="c"), tup(C="c"), tup(C="c"), "(1)"),
        (a1, orv("a1", "a2"), a1, "(2)"),
        (pset("a1", "a2"), pset("a1", "a2", "a3"),
         pset("a1", "a2"), "(3)"),
        (pset("a1", "a2"), cset("a1", "a2", "a3"),
         pset("a1", "a2"), "(3)"),
        (pset("a1", "a2"), cset("a3"), pset(), "(3)"),
        (cset("a1", "a2"), cset("a1", "a2", "a3"),
         cset("a1", "a2"), "(4)"),
        (cset("a1", "a2"), cset("a3"), cset(), "(4)"),
        (tup(A="a1", B="b1", C=pset("c1")),
         tup(A="a1", B="b1", C=cset("c1", "c2")),
         tup(A="a1", B="b1", C=pset("c1")), "(5)"),
        (a1, BOTTOM, BOTTOM, "(6)"),
        (a1, a2, BOTTOM, "(6)"),
        (a1, tup(A="a1"), BOTTOM, "(6)"),
        (tup(A="a1", B="b1", C="c1"), tup(A="a2", B="b2", C="c2"),
         BOTTOM, "(6)"),
    ]
    return _operation_experiment("E4", "Example 4 — intersection table",
                                 intersection, rows)


@register("E5", "Example 5 — difference table", "§3, Example 5")
def run_example5() -> ExperimentResult:
    from repro.core.objects import Atom

    a = Atom("a")
    a1, a2 = Atom("a1"), Atom("a2")
    rows = [
        (a, a, BOTTOM, "(1)"),
        (a, BOTTOM, a, "(6)"),
        (orv("a1", "a2"), a1, a2, "(2)"),
        (pset("a1", "a2"), pset("a2", "a3"), pset("a1"), "(3)"),
        (pset("a1", "a2"), cset("a1", "a2"), pset(), "(3)"),
        (cset("a1", "a2"), cset("a3"), cset("a1", "a2"), "(4)"),
        (cset("a1", "a2"), cset("a1", "a2"), cset(), "(4)"),
        (tup(A="a1", B="b1", C=orv("c1", "c2"), D=cset("d1", "d2")),
         tup(A="a1", B="b1", C="c2", D=cset("d1")),
         tup(A="a1", B="b1", C="c1", D=cset("d2")), "(5)"),
        (tup(A="a1", B=pset("b1")), tup(A="a2", B=pset("b2"), C="c2"),
         tup(A="a1", B=pset("b1")), "(6)"),
    ]
    return _operation_experiment("E5", "Example 5 — difference table",
                                 difference, rows)


@register("E6", "Example 6 — set-level operations", "§3, Example 6")
def run_example6() -> ExperimentResult:
    s1, s2 = example6_sources()
    key = SECTION3_KEY
    union_result = s1.union(s2, key)
    inter_result = s1.intersection(s2, key)
    diff_result = s1.difference(s2, key)

    expected_union = DataSet([
        data("S78", tup(type="Article", title="Ingres", auth="Sam",
                        jnl="TODS")),
        data("S85", tup(type="Article", title="NF2", auth="Sam",
                        year=1985)),
        data("T79", tup(type="InProc", title="RDB", auth="Tom",
                        conf="PODS")),
        data("A75", tup(type="InProc", title="NF2", auth="Ann",
                        year=1975)),
        data("S76", tup(type="InProc", title="Ingres", auth="Sam",
                        conf="EDBT")),
        data(orv(marker("B80"), marker("B82")),
             tup(type="Article", title="Oracle", auth="Bob", year=1980)),
        data("A78", tup(type="Article", title="Datalog",
                        auth=orv("Ann", "Tom"), year=1978)),
        data(orv(marker("J88"), marker("P90")),
             tup(type="Article", title="DOOD", auth=orv("Joe", "Pam"),
                 jnl="JLP")),
    ])
    expected_inter = DataSet([
        Data(BOTTOM, tup(type="Article", title="Oracle", auth="Bob",
                         year=1980)),
        data("A78", tup(type="Article", title="Datalog", year=1978)),
        Data(BOTTOM, tup(type="Article", title="DOOD", jnl="JLP")),
    ])
    expected_diff = DataSet([
        data("S78", tup(type="Article", title="Ingres", auth="Sam",
                        jnl="TODS")),
        data("B80", tup(type="Article", title="Oracle")),
        Data(BOTTOM, tup(type="Article", title="Datalog", auth="Ann")),
        data("J88", tup(type="Article", title="DOOD", auth="Joe")),
    ])

    tables = [
        _data_table("S1 ∪K S2 (K = {type, title})", expected_union,
                    union_result),
        _data_table("S1 ∩K S2", expected_inter, inter_result),
        _data_table("S1 −K S2", expected_diff, diff_result),
    ]
    reproduced = (union_result == expected_union
                  and inter_result == expected_inter
                  and diff_result == expected_diff)
    return ExperimentResult(
        "E6", "Example 6 — set-level union/intersection/difference",
        tables,
        findings=[f"sizes: |S1∪S2|={len(union_result)}, "
                  f"|S1∩S2|={len(inter_result)}, "
                  f"|S1−S2|={len(diff_result)} (paper: 8, 3, 4)"],
        reproduced=reproduced)


@register("E7", "§3 opening — B80/B82 pair", "§3, opening example")
def run_section3_pair() -> ExperimentResult:
    first, second = section3_sources()
    key = SECTION3_KEY
    d1 = next(iter(first))
    d2 = next(iter(second))
    cases = [
        ("union", d1.union(d2, key),
         data(orv(marker("B80"), marker("B82")),
              tup(type="Article", title="Oracle", author="Bob",
                  year=1980, journal="IS"))),
        ("intersection", d1.intersection(d2, key),
         Data(BOTTOM, tup(type="Article", title="Oracle", year=1980))),
        ("difference", d1.difference(d2, key),
         data("B80", tup(type="Article", title="Oracle", author="Bob"))),
    ]
    table = Table("B80 vs B82, K = {type, title}",
                  ["operation", "result", "match"])
    reproduced = True
    for name, actual, expected in cases:
        match = actual == expected
        reproduced &= match
        table.add(name, format_data(actual), "yes" if match else "NO")
    return ExperimentResult("E7", "§3 opening pair", [table],
                            reproduced=reproduced)


@register("E8", "Expand operation (§4 first future-work item)",
          "§4, proposed 'expand' operation")
def run_expand() -> ExperimentResult:
    """The paper proposes expand "to expand the markers to
    semistructured data for further manipulation"; E8 exercises it on
    the paper's own cross-reference example (Example 1)."""
    from repro.bibtex import parse_bib_source
    from repro.core.expand import expand_data, expand_dataset

    bib = parse_bib_source(EXAMPLE1_BIB)
    bob = bib.find("Bob")
    expanded = expand_data(bob, bib)
    expected_crossref = tup(type="Book", booktitle="Database",
                            editor=cset("John"), year=1999)
    table = Table("expand on Example 1's crossref",
                  ["aspect", "value", "match"])
    inline = expanded.object.get("crossref")
    table.add("crossref before", format_object(bob.object["crossref"]),
              "yes" if repr(bob.object["crossref"]) == "DB" else "NO")
    table.add("crossref after", format_object(inline),
              "yes" if inline == expected_crossref else "NO")
    idempotent = expand_dataset(expand_dataset(bib)) == \
        expand_dataset(bib)
    table.add("idempotent on this file", idempotent,
              "yes" if idempotent else "NO")
    cyclic = parse_bib_source(
        '@Book{A, crossref = "B"} @Book{B, crossref = "A"}')
    cycles_safe = True
    try:
        expand_dataset(cyclic)
    except RecursionError:  # pragma: no cover - would be the failure
        cycles_safe = False
    table.add("cyclic crossrefs terminate", cycles_safe,
              "yes" if cycles_safe else "NO")
    reproduced = (inline == expected_crossref and idempotent
                  and cycles_safe)
    return ExperimentResult(
        "E8", "expand operation", [table],
        findings=["expand, rule-based languages and an implementation "
                  "are the paper's three §4 proposals; this repository "
                  "provides all three (repro.core.expand, repro.rules, "
                  "repro.store)"],
        reproduced=reproduced)
