"""Entry point for ``python -m repro.harness``."""

import sys

from repro.harness.runner import main

sys.exit(main())
