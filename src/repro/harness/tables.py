"""Plain-text table rendering for experiment reports.

No dependency beyond the stdlib; produces the aligned monospace tables
printed by ``python -m repro.harness`` and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Table"]


@dataclass
class Table:
    """A titled table with a header row and string-convertible cells."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(cells)

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add(*row)

    def render(self, max_cell_width: int = 60) -> str:
        """Render the table as aligned monospace text."""
        def clip(cell: object) -> str:
            text = str(cell)
            if len(text) > max_cell_width:
                return text[:max_cell_width - 1] + "…"
            return text

        header = [clip(column) for column in self.columns]
        body = [[clip(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header[index]),
                *(len(row[index]) for row in body)) if body
            else len(header[index])
            for index in range(len(header))
        ]

        def line(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        separator = "  ".join("-" * width for width in widths)
        out = [self.title, line(header), separator]
        out.extend(line(row) for row in body)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
