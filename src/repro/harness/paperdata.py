"""Canonical in-code copies of the paper's worked-example inputs.

Every experiment that reproduces a worked example starts from the data as
printed in the paper: the Example 1 bib file, the Example 2 HTML page and
the Example 6 source databases, plus the §3 B80/B82 pair.
"""

from __future__ import annotations

from repro.core.builder import dataset, tup
from repro.core.data import DataSet

#: The bib file of Example 1 (quoted crossref — bare words are @string
#: macros in real BibTeX).
EXAMPLE1_BIB = """
@InBook{Bob,
   author = "Bob and others",
   title = "Oracle",
   crossref = "DB"}

@Book{DB,
   booktitle = "Database",
   editor = "John",
   year = 1999}
"""

#: The simplified department page of Example 2, with the paper's own
#: slightly broken markup preserved (unclosed <li>, '<a>' used to close).
EXAMPLE2_HTML = """
<html>
<head><title>CSDept</title></head>
<body>
<h2>People</h2>
<ul>
<li><a href="faculty.html"> Faculty </a>
<li><a href="staff.html"> Staff </a>
<li><a href="students.html"> Students</a>
</ul>
<h2><a href="programs.html"> Programs<a></h2>
<h2><a href="research.html"> Research<a></h2>
</body>
</html>
"""

#: URL of the Example 2 page.
EXAMPLE2_URL = "www.cs.uregina.ca"

#: The key used throughout §3.
SECTION3_KEY = frozenset({"type", "title"})


def section3_sources() -> tuple[DataSet, DataSet]:
    """The two single-entry sources of the §3 opening example."""
    first = dataset(("B80", tup(type="Article", title="Oracle",
                                author="Bob", year=1980)))
    second = dataset(("B82", tup(type="Article", title="Oracle",
                                 year=1980, journal="IS")))
    return first, second


def example6_sources() -> tuple[DataSet, DataSet]:
    """The two bibliographic databases of Example 6, verbatim."""
    s1 = dataset(
        ("B80", tup(type="Article", title="Oracle", auth="Bob",
                    year=1980)),
        ("S78", tup(type="Article", title="Ingres", auth="Sam",
                    jnl="TODS")),
        ("A78", tup(type="Article", title="Datalog", auth="Ann",
                    year=1978)),
        ("J88", tup(type="Article", title="DOOD", auth="Joe",
                    jnl="JLP")),
    )
    s2 = dataset(
        ("B82", tup(type="Article", title="Oracle", auth="Bob",
                    year=1980)),
        ("A78", tup(type="Article", title="Datalog", auth="Tom",
                    year=1978)),
        ("P90", tup(type="Article", title="DOOD", auth="Pam",
                    jnl="JLP")),
        ("S85", tup(type="Article", title="NF2", auth="Sam",
                    year=1985)),
        ("T79", tup(type="InProc", title="RDB", auth="Tom",
                    conf="PODS")),
        ("A75", tup(type="InProc", title="NF2", auth="Ann",
                    year=1975)),
        ("S76", tup(type="InProc", title="Ingres", auth="Sam",
                    conf="EDBT")),
    )
    return s1, s2
