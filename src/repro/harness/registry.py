"""Experiment registry shared by the CLI runner and the benchmark suite.

An *experiment* reproduces one artifact of the paper (a worked example, a
proposition, or a scaled study the paper motivates but did not run). Each
experiment's ``run()`` returns an :class:`ExperimentResult` whose
``reproduced`` flag states whether the artifact came out as the paper
prints it (or, for propositions, whether the claim held — a *documented
deviation* is still a successful reproduction run, and is listed under
``findings``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.harness.tables import Table

__all__ = ["Experiment", "ExperimentResult", "register", "get_experiment",
           "all_experiments"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    findings: list[str] = field(default_factory=list)
    reproduced: bool = True

    def render(self) -> str:
        """Render the full report block for this experiment."""
        status = "REPRODUCED" if self.reproduced else "DEVIATION"
        out = [f"== {self.experiment_id}: {self.title} [{status}] =="]
        for table in self.tables:
            out.append(table.render())
        for finding in self.findings:
            out.append(f"  * {finding}")
        return "\n\n".join(out)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_ref: str
    runner: Callable[[], ExperimentResult]

    def run(self) -> ExperimentResult:
        return self.runner()


_REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_ref: str):
    """Decorator registering an experiment runner under an id."""

    def decorate(fn: Callable[[], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id, title, paper_ref, fn)
        return fn

    return decorate


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {known}")
    return _REGISTRY[key]


def all_experiments() -> list[Experiment]:
    """All experiments in id order."""
    def sort_key(experiment_id: str):
        prefix = experiment_id[0]
        rank = {"E": 0, "P": 1, "S": 2}.get(prefix, 3)
        return (rank, experiment_id)

    return [_REGISTRY[key] for key in sorted(_REGISTRY, key=sort_key)]
