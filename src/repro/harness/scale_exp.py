"""Experiments S1-S4: the scaled studies the paper motivates but never
ran (it has no evaluation section).

S1 — merge scaling over synthetic BibTeX databases;
S2 — information preservation vs. the OEM and labeled-tree baselines;
S3 — key-sensitivity sweep (Proposition 4 at scale);
S4 — object-operation micro-costs by shape and depth.

Absolute timings depend on the host; the *shape* of each table (who wins,
how results grow) is the reproducible signal, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.baselines.metrics import compare_merges
from repro.core.objects import Atom
from repro.core.operations import difference, intersection, union
from repro.harness.registry import ExperimentResult, register
from repro.harness.tables import Table
from repro.merge.conflicts import find_conflicts
from repro.properties import ObjectGenerator
from repro.workloads import BibWorkloadSpec, generate_workload

#: Universe sizes for the scaling experiments.
S1_SIZES = (100, 300, 1000, 3000)

#: Default workload knobs (see DESIGN.md experiment index).
S1_OVERLAP = 0.3
S1_CONFLICTS = 0.2


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@register("S1", "Merge scaling on synthetic BibTeX databases",
          "motivation in §1")
def run_s1() -> ExperimentResult:
    table = Table(
        f"two sources, overlap={S1_OVERLAP}, conflicts={S1_CONFLICTS}, "
        "K={type,title}",
        ["entries", "|S1|", "|S2|", "|S1∪S2|", "merged", "conflicts",
         "union ms", "inter ms", "diff ms"])
    reproduced = True
    for size in S1_SIZES:
        workload = generate_workload(BibWorkloadSpec(
            entries=size, sources=2, overlap=S1_OVERLAP,
            conflict_rate=S1_CONFLICTS, seed=size))
        s1, s2 = workload.sources
        merged, union_seconds = _timed(
            lambda: s1.union(s2, workload.key))
        _, inter_seconds = _timed(
            lambda: s1.intersection(s2, workload.key))
        _, diff_seconds = _timed(
            lambda: s1.difference(s2, workload.key))
        conflicts = len(find_conflicts(merged))
        merged_groups = sum(1 for d in merged if len(d.markers) > 1)
        reproduced &= len(merged) == workload.expected_result_size()
        reproduced &= merged_groups == len(workload.shared_uids)
        table.add(size, len(s1), len(s2), len(merged), merged_groups,
                  conflicts, f"{union_seconds * 1e3:.1f}",
                  f"{inter_seconds * 1e3:.1f}",
                  f"{diff_seconds * 1e3:.1f}")
    return ExperimentResult(
        "S1", "merge scaling", [table],
        findings=["result sizes match the ground truth exactly at every "
                  "scale; conflicts are flagged only on shared entries"],
        reproduced=reproduced)


@register("S2", "Information preservation vs OEM / labeled trees",
          "claim at end of §2")
def run_s2() -> ExperimentResult:
    table = Table(
        "same sources merged in three models (retention = surviving "
        "distinct atoms / source atoms)",
        ["entries", "model retention", "OEM retention",
         "tree retention", "model conflicts", "tree ambiguous dups",
         "openness (model/OEM/tree)"])
    reproduced = True
    for size in (100, 300, 1000):
        workload = generate_workload(BibWorkloadSpec(
            entries=size, sources=2, overlap=0.4, conflict_rate=0.3,
            seed=size + 1))
        s1, s2 = workload.sources
        row = compare_merges(s1, s2, workload.key)
        reproduced &= row.retention(row.model) == 1.0
        reproduced &= row.retention(row.oem) < 1.0
        reproduced &= row.model.conflicts_flagged > 0
        reproduced &= row.oem.conflicts_flagged == 0
        openness = (f"{'yes' if row.model.openness_preserved else 'no'}/"
                    f"{'yes' if row.oem.openness_preserved else 'no'}/"
                    f"{'yes' if row.tree.openness_preserved else 'no'}")
        table.add(size, f"{row.retention(row.model):.3f}",
                  f"{row.retention(row.oem):.3f}",
                  f"{row.retention(row.tree):.3f}",
                  row.model.conflicts_flagged,
                  row.tree.ambiguous_duplicates, openness)
    return ExperimentResult(
        "S2", "model comparison", [table],
        findings=[
            "the paper's model retains every source atom and flags every "
            "conflict; OEM silently drops the losing value of each "
            "conflict; the tree model keeps the values but as unflagged "
            "ambiguous duplicates; only the paper's model keeps the "
            "open/closed set distinction"],
        reproduced=reproduced)


@register("S3", "Key-sensitivity sweep (Proposition 4 at scale)",
          "§3, Prop. 4")
def run_s3() -> ExperimentResult:
    workload = generate_workload(BibWorkloadSpec(
        entries=500, sources=2, overlap=0.5, conflict_rate=0.25,
        seed=33))
    s1, s2 = workload.sources
    keys = [
        ("{title}", frozenset({"title"})),
        ("{type,title}", frozenset({"type", "title"})),
        ("{type,title,year}", frozenset({"type", "title", "year"})),
        ("{type,title,year,pages}",
         frozenset({"type", "title", "year", "pages"})),
    ]
    table = Table("growing K over a 500-entry workload",
                  ["K", "|S1∪S2|", "merged groups", "conflicts",
                   "|S1∩S2|", "|S1−S2|"])
    union_sizes = []
    for label, key in keys:
        merged = s1.union(s2, key)
        union_sizes.append(len(merged))
        merged_groups = sum(1 for d in merged if len(d.markers) > 1)
        table.add(label, len(merged), merged_groups,
                  len(find_conflicts(merged)),
                  len(s1.intersection(s2, key)),
                  len(s1.difference(s2, key)))
    # Bigger keys are stricter: fewer entries combine, so the union grows.
    reproduced = all(
        earlier <= later
        for earlier, later in zip(union_sizes, union_sizes[1:]))
    return ExperimentResult(
        "S3", "key sensitivity", [table],
        findings=["a larger key identifies fewer pairs: the union grows "
                  "monotonically while merged groups and recorded "
                  "conflicts shrink — Proposition 4's direction at "
                  "data-set scale"],
        reproduced=reproduced)


@register("S4", "Object-operation micro-costs", "Definitions 8-10")
def run_s4() -> ExperimentResult:
    table = Table("median cost per object operation (µs)",
                  ["object depth", "union", "intersection", "difference"])
    key = frozenset({"A", "B"})
    reproduced = True
    for depth in (1, 2, 3, 4):
        generator = ObjectGenerator(seed=depth, max_depth=depth,
                                    max_children=3)
        pairs = [(generator.object(), generator.object())
                 for _ in range(300)]
        timings = {}
        for name, operation in (("union", union),
                                ("intersection", intersection),
                                ("difference", difference)):
            start = time.perf_counter()
            for first, second in pairs:
                operation(first, second, key)
            elapsed = time.perf_counter() - start
            timings[name] = elapsed / len(pairs) * 1e6
        table.add(depth, f"{timings['union']:.1f}",
                  f"{timings['intersection']:.1f}",
                  f"{timings['difference']:.1f}")
    return ExperimentResult(
        "S4", "operation micro-costs", [table],
        findings=["costs grow with nesting depth; all three operations "
                  "stay within the same order of magnitude"],
        reproduced=reproduced)


@register("S5", "Ablation — indexed vs naive Definition 12",
          "implementation study (paper §4 future work)")
def run_s5() -> ExperimentResult:
    from repro.store.ops import indexed_union

    table = Table(
        "naive all-pairs scan vs key-index pairing (identical results "
        "asserted)",
        ["entries", "naive union ms", "indexed union ms", "speedup"])
    reproduced = True
    for size in (100, 300, 1000):
        workload = generate_workload(BibWorkloadSpec(
            entries=size, sources=2, overlap=0.3,
            conflict_rate=S1_CONFLICTS, seed=size))
        s1, s2 = workload.sources
        naive, naive_seconds = _timed(lambda: s1.union(s2, workload.key))
        fast, fast_seconds = _timed(
            lambda: indexed_union(s1, s2, workload.key))
        reproduced &= naive == fast
        speedup = naive_seconds / fast_seconds if fast_seconds else 0.0
        table.add(size, f"{naive_seconds * 1e3:.1f}",
                  f"{fast_seconds * 1e3:.1f}", f"{speedup:.1f}x")
    return ExperimentResult(
        "S5", "indexed-merge ablation", [table],
        findings=["the key index changes pairing from O(n·m) to "
                  "O(n+m) with bit-identical results; the speedup grows "
                  "with scale, confirming the naive scan (kept as the "
                  "reference semantics) is the bottleneck"],
        reproduced=reproduced)
