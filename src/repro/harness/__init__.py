"""Experiment harness: registry, paper fixtures, tables and CLI runner.

Run everything::

    python -m repro.harness

Run one experiment::

    python -m repro.harness E6
"""

from repro.harness.registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
)
from repro.harness.tables import Table

__all__ = ["Experiment", "ExperimentResult", "register",
           "get_experiment", "all_experiments", "Table"]
