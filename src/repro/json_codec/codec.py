"""Tagged-JSON encoder/decoder for model objects, data and data sets.

Wire format (one JSON object per model node)::

    bottom        {"kind": "bottom"}
    atom          {"kind": "atom", "type": "str|int|float|bool",
                   "value": <json scalar>}
    marker        {"kind": "marker", "name": "<name>"}
    or-value      {"kind": "or", "disjuncts": [<node>, ...]}
    partial set   {"kind": "pset", "elements": [<node>, ...]}
    complete set  {"kind": "cset", "elements": [<node>, ...]}
    tuple         {"kind": "tuple", "fields": [["<label>", <node>], ...]}
    datum         {"kind": "data", "marker": <node>, "object": <node>}
    data set      {"kind": "dataset", "data": [<datum>, ...]}

The ``type`` discriminator on atoms preserves distinctions JSON would
merge (``1`` vs ``1.0`` vs ``true``). Decoding validates shape and raises
:class:`~repro.core.errors.CodecError` with a helpful message.

Every decoding entry point takes ``intern=True`` to return hash-consed
objects (:mod:`repro.core.intern`): decoded values then share canonical
substructure with everything else in the pool, so the memoized
``⊴``/compatibility/operation fast paths apply to them directly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.data import Data, DataSet
from repro.core.errors import CodecError, ModelError
from repro.core.guard import guarded as _guarded
from repro.core.intern import intern as _intern_object
from repro.core.intern import intern_data as _intern_data
from repro.core.intern import intern_dataset as _intern_dataset
from repro.core.objects import (
    BOTTOM,
    Atom,
    Bottom,
    CompleteSet,
    Marker,
    OrValue,
    PartialSet,
    SSObject,
    Tuple,
)

_ATOM_TYPE_NAMES = {bool: "bool", int: "int", float: "float", str: "str"}
_ATOM_TYPES_BY_NAME = {"bool": bool, "int": int, "float": float, "str": str}


@_guarded
def encode_object(obj: SSObject) -> dict[str, Any]:
    """Encode a model object to a JSON-serializable dict."""
    if isinstance(obj, Bottom):
        return {"kind": "bottom"}
    if isinstance(obj, Atom):
        return {
            "kind": "atom",
            "type": _ATOM_TYPE_NAMES[type(obj.value)],
            "value": obj.value,
        }
    if isinstance(obj, Marker):
        return {"kind": "marker", "name": obj.name}
    if isinstance(obj, OrValue):
        return {"kind": "or",
                "disjuncts": [encode_object(d) for d in obj]}
    if isinstance(obj, PartialSet):
        return {"kind": "pset",
                "elements": [encode_object(e) for e in obj]}
    if isinstance(obj, CompleteSet):
        return {"kind": "cset",
                "elements": [encode_object(e) for e in obj]}
    if isinstance(obj, Tuple):
        return {"kind": "tuple",
                "fields": [[label, encode_object(value)]
                           for label, value in obj.items()]}
    raise CodecError(f"cannot encode {type(obj).__name__}")


def _expect(payload: Any, field: str, kind: str) -> Any:
    if not isinstance(payload, dict):
        raise CodecError(f"expected a JSON object, got "
                         f"{type(payload).__name__}")
    if field not in payload:
        raise CodecError(f"{kind} node is missing the {field!r} field")
    return payload[field]


@_guarded
def decode_object(payload: Any, *, intern: bool = False) -> SSObject:
    """Decode a dict produced by :func:`encode_object`.

    ``intern=True`` returns the canonical hash-consed object.
    """
    decoded = _decode_object(payload)
    return _intern_object(decoded) if intern else decoded


def _decode_object(payload: Any) -> SSObject:
    kind = _expect(payload, "kind", "model")
    if kind == "bottom":
        return BOTTOM
    if kind == "atom":
        type_name = _expect(payload, "type", "atom")
        if type_name not in _ATOM_TYPES_BY_NAME:
            raise CodecError(f"unknown atom type {type_name!r}")
        value = _expect(payload, "value", "atom")
        expected_type = _ATOM_TYPES_BY_NAME[type_name]
        if type_name == "float" and isinstance(value, int) \
                and not isinstance(value, bool):
            # JSON renders 1.0 as 1 in some writers; restore the float.
            value = float(value)
        if not isinstance(value, expected_type) or (
                expected_type is int and isinstance(value, bool)):
            raise CodecError(
                f"atom value {value!r} does not match type {type_name!r}")
        return Atom(value)
    if kind == "marker":
        try:
            return Marker(_expect(payload, "name", "marker"))
        except ModelError as exc:
            raise CodecError(f"invalid marker: {exc}") from exc
    if kind == "or":
        disjuncts = _expect(payload, "disjuncts", "or")
        try:
            # Strict wire format: an "or" node needs >= 2 distinct
            # disjuncts, exactly like the model constructor.
            return OrValue(_decode_object(d) for d in disjuncts)
        except ModelError as exc:
            raise CodecError(f"invalid or-value: {exc}") from exc
    if kind == "pset":
        return PartialSet(
            _decode_object(e) for e in _expect(payload, "elements", "pset"))
    if kind == "cset":
        return CompleteSet(
            _decode_object(e) for e in _expect(payload, "elements", "cset"))
    if kind == "tuple":
        fields = _expect(payload, "fields", "tuple")
        try:
            pairs = [(label, _decode_object(value))
                     for label, value in fields]
        except (TypeError, ValueError) as exc:
            raise CodecError(f"malformed tuple fields: {exc}") from exc
        try:
            return Tuple(pairs)
        except ModelError as exc:
            raise CodecError(f"invalid tuple: {exc}") from exc
    raise CodecError(f"unknown node kind {kind!r}")


@_guarded
def encode_data(datum: Data) -> dict[str, Any]:
    """Encode one datum."""
    return {
        "kind": "data",
        "marker": encode_object(datum.marker),
        "object": encode_object(datum.object),
    }


@_guarded
def decode_data(payload: Any, *, intern: bool = False) -> Data:
    """Decode one datum (``intern=True`` hash-conses its objects)."""
    if _expect(payload, "kind", "data") != "data":
        raise CodecError("expected a 'data' node")
    try:
        decoded = Data(_decode_object(payload["marker"]),
                       _decode_object(payload["object"]))
    except ModelError as exc:
        raise CodecError(f"invalid datum: {exc}") from exc
    return _intern_data(decoded) if intern else decoded


@_guarded
def encode_dataset(dataset: DataSet) -> dict[str, Any]:
    """Encode a whole data set (canonical datum order)."""
    return {"kind": "dataset",
            "data": [encode_data(d) for d in dataset]}


@_guarded
def decode_dataset(payload: Any, *, intern: bool = False) -> DataSet:
    """Decode a data set (``intern=True`` hash-conses every object)."""
    if _expect(payload, "kind", "dataset") != "dataset":
        raise CodecError("expected a 'dataset' node")
    decoded = DataSet(decode_data(d) for d in _expect(payload, "data",
                                                      "dataset"))
    return _intern_dataset(decoded) if intern else decoded


@_guarded
def dumps(obj: SSObject, *, indent: int | None = None) -> str:
    """Serialize a model object to a JSON string."""
    return json.dumps(encode_object(obj), indent=indent)


@_guarded
def loads(text: str, *, intern: bool = False) -> SSObject:
    """Parse a JSON string produced by :func:`dumps`."""
    return decode_object(_load_json(text), intern=intern)


@_guarded
def dumps_data(datum: Data, *, indent: int | None = None) -> str:
    """Serialize one datum to a JSON string."""
    return json.dumps(encode_data(datum), indent=indent)


@_guarded
def loads_data(text: str, *, intern: bool = False) -> Data:
    """Parse one datum from JSON text."""
    return decode_data(_load_json(text), intern=intern)


@_guarded
def dumps_dataset(dataset: DataSet, *, indent: int | None = None) -> str:
    """Serialize a data set to a JSON string."""
    return json.dumps(encode_dataset(dataset), indent=indent)


@_guarded
def loads_dataset(text: str, *, intern: bool = False) -> DataSet:
    """Parse a data set from JSON text."""
    return decode_dataset(_load_json(text), intern=intern)


def _load_json(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"invalid JSON: {exc}") from exc
