"""Lossless JSON encoding of the data model.

JSON itself cannot distinguish the model's seven object kinds (a JSON
array could be a partial set, a complete set or an or-value; JSON ``null``
could be ``⊥`` or a missing attribute), so the codec uses *tagged* JSON
objects — every encoded node carries a ``"kind"`` discriminator. The
encoding is canonical: elements appear in structural order, so equal model
objects encode to identical JSON strings and the text is diff-friendly.

    >>> from repro.json_codec import dumps, loads
    >>> from repro import tup, pset
    >>> loads(dumps(tup(a=pset(1)))) == tup(a=pset(1))
    True
"""

from repro.json_codec.codec import (
    decode_data,
    decode_dataset,
    decode_object,
    dumps,
    dumps_data,
    dumps_dataset,
    encode_data,
    encode_dataset,
    encode_object,
    loads,
    loads_data,
    loads_dataset,
)

__all__ = [
    "encode_object", "decode_object", "encode_data", "decode_data",
    "encode_dataset", "decode_dataset",
    "dumps", "loads", "dumps_data", "loads_data",
    "dumps_dataset", "loads_dataset",
]
