"""Setuptools shim for environments without the wheel package.

``pip install -e .`` on this machine has no network and no ``wheel``
distribution, so the PEP 660 editable build cannot produce a wheel; this
legacy setup.py lets pip fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Liu & Ling (EDBT 2000): a data model for "
        "semistructured data with partial and inconsistent information"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
