#!/usr/bin/env python
"""CI guard against benchmark regressions.

Smoke-runs every benchmark that has a committed ``BENCH_*.json``
baseline and compares the *headline speedup ratios* of the fresh run
against ``BENCH_smoke_baseline.json``. Ratios — not absolute seconds —
are compared because they are largely machine-independent: both sides
of each ratio run on the same box in the same process, so a slow CI
runner scales numerator and denominator together.

A headline ratio fails the build when it drops below ``baseline /
TOLERANCE``. The tolerance is deliberately generous (2×): smoke
workloads are tiny, so their ratios are noisy, and this check exists to
catch *structural* regressions — an optimization accidentally disabled,
a fast path no longer taken — not percent-level drift. The full-run
floors (e.g. the 3× snapshot floor) stay enforced by the benchmarks
themselves.

Every benchmark's own oracles and exit status also propagate: an
equality-oracle failure fails this check regardless of any ratio.

Usage::

    python tools/check_bench_regression.py               # check
    python tools/check_bench_regression.py --rebaseline  # refresh
    python tools/check_bench_regression.py --only snapshot

``--rebaseline`` rewrites ``BENCH_smoke_baseline.json`` from a fresh
smoke run; commit the result whenever a deliberate change moves the
headline ratios.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO / "BENCH_smoke_baseline.json"

#: Current ratios may drop to ``baseline / TOLERANCE`` before failing.
TOLERANCE = 2.0

#: name -> (benchmark script, dotted paths of its headline ratios).
#: Each path must resolve to a number in the benchmark's JSON report.
REGISTRY: dict[str, tuple[str, tuple[str, ...]]] = {
    "columnar": ("benchmarks/bench_columnar.py",
                 ("residual_speedup",)),
    "concurrency": ("benchmarks/bench_concurrency.py",
                    ("cached_read_speedup", "parallel_speedup")),
    "interning": ("benchmarks/bench_interning.py", ("speedup",)),
    "join": ("benchmarks/bench_join.py",
             ("join_speedup", "group_agg_speedup")),
    "merge_pipeline": ("benchmarks/bench_merge_pipeline.py",
                       ("speedup_blocked", "speedup_indexed")),
    "nested": ("benchmarks/bench_nested.py",
               ("nested_residual_speedup", "group_agg_speedup")),
    "query_planner": ("benchmarks/bench_query_planner.py",
                      ("phases.point_lookup.speedup",
                       "phases.conjunctive.speedup")),
    "snapshot": ("benchmarks/bench_snapshot.py",
                 ("save_speedup", "cold_load_speedup")),
    "wal": ("benchmarks/bench_wal.py",
            ("recovery_speedup", "batch_commit_speedup",
             "group_commit_speedup")),
}


def _dig(report: dict, dotted: str) -> float:
    value: object = report
    for part in dotted.split("."):
        value = value[part]  # type: ignore[index]
    if not isinstance(value, (int, float)):
        raise TypeError(f"{dotted} is {value!r}, not a number")
    return float(value)


def _smoke_run(name: str, script: str) -> tuple[int, dict | None]:
    """Run one benchmark in smoke mode; (exit status, parsed report)."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / f"{name}.json"
        completed = subprocess.run(
            [sys.executable, str(REPO / script), "--smoke",
             "--out", str(out)],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src")})
        if completed.returncode != 0:
            sys.stderr.write(completed.stdout[-2000:])
            sys.stderr.write(completed.stderr[-2000:])
            return completed.returncode, None
        try:
            return 0, json.loads(out.read_text())
        except (OSError, ValueError) as exc:
            print(f"{name}: unreadable report: {exc}", file=sys.stderr)
            return 1, None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rebaseline", action="store_true",
                        help="rewrite BENCH_smoke_baseline.json from a "
                             "fresh smoke run")
    parser.add_argument("--only", choices=sorted(REGISTRY), default=None,
                        help="check a single benchmark")
    args = parser.parse_args(argv)

    selected = {args.only: REGISTRY[args.only]} if args.only else REGISTRY

    baseline: dict[str, dict[str, float]] = {}
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except OSError:
        # Missing is fine when rebaselining (--only merges into it).
        if not args.rebaseline:
            print(f"no baseline at {BASELINE_PATH}; run with "
                  f"--rebaseline first", file=sys.stderr)
            return 2
    if not args.rebaseline:
        missing = [name for name in selected if name not in baseline]
        if missing:
            print(f"baseline has no entry for: {', '.join(missing)}; "
                  f"run --rebaseline", file=sys.stderr)
            return 2

    failures = 0
    fresh: dict[str, dict[str, float]] = {}
    for name, (script, ratio_paths) in selected.items():
        status, report = _smoke_run(name, script)
        if status != 0 or report is None:
            print(f"FAIL {name}: benchmark exited with status {status} "
                  f"(oracle or harness failure)")
            failures += 1
            continue
        ratios = {path: _dig(report, path) for path in ratio_paths}
        fresh[name] = ratios
        for path, current in ratios.items():
            if args.rebaseline:
                print(f"  {name}.{path} = {current}")
                continue
            floor = baseline[name][path] / TOLERANCE
            verdict = "ok" if current >= floor else "FAIL"
            print(f"{verdict:>4} {name}.{path}: {current} "
                  f"(baseline {baseline[name][path]}, "
                  f"floor {round(floor, 2)})")
            if current < floor:
                failures += 1

    if args.rebaseline:
        if failures:
            print(f"{failures} benchmark(s) failed; baseline NOT "
                  f"written", file=sys.stderr)
            return 1
        merged = dict(baseline)
        merged.update(fresh)
        BASELINE_PATH.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
