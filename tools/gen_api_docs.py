#!/usr/bin/env python
"""Generate docs/API.md from the package's public surface.

Walks every ``repro`` subpackage, reads its ``__all__`` and docstrings,
and writes a compact reference: one section per module, one line per
public name (signature + first docstring sentence). Run from the repo
root::

    python tools/gen_api_docs.py

The file is generated; edit the docstrings, not docs/API.md.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

MODULES = [
    "repro.core",
    "repro.text",
    "repro.json_codec",
    "repro.binary_codec",
    "repro.bibtex",
    "repro.web",
    "repro.baselines",
    "repro.merge",
    "repro.query",
    "repro.rules",
    "repro.store",
    "repro.schema",
    "repro.workloads",
    "repro.properties",
    "repro.harness",
    "repro.cli",
]

HEADER = """# API reference

One line per public name, generated from the docstrings by
`python tools/gen_api_docs.py`. See `docs/TUTORIAL.md` for a guided
walkthrough and the module docstrings for full documentation.

## Interning and caching semantics

All model objects are immutable, which makes **hash-consing** sound:
`repro.core.intern.intern(obj)` (or the builder shortcut `iobj(...)`)
returns the canonical representative of an object's structural
equivalence class, so two structurally equal interned objects are
pointer-identical. The pool holds strong references, guaranteeing a
canonical object's `id()` is never recycled while the pool lives.

Interning is what unlocks the memoized **fast paths**: `⊴`
(`less_informative`), key-compatibility (`compatible`) and the key-based
operations (`union` / `intersection` / `difference`) each keep an
identity-keyed memo table that is consulted only when *both* operands
are interned. Equality between interned objects degenerates to an
identity check (`repro.core.intern.equal`), the store's key-index
signatures are cached per interned object, and the fast operations
intern their results so chained operations stay in the fast regime.
Decoder entry points (`repro.text.parse_*`, `repro.json_codec.loads*`,
`repro.bibtex` mapping functions) accept `intern=True`;
`repro.store.Database` interns by default (`intern_objects=False` opts
out).

Every cached predicate and operation also accepts `naive=True`, which
bypasses the pool and all memo tables and runs the untouched
definitional code — the reference oracle the differential test suite
(`tests/properties/test_differential.py`) checks the fast paths
against. `clear_pool()` empties the pool **and** every registered memo
table (they are registered via `repro.core.intern.on_clear`), so stale
`id()`-keyed entries can never outlive the objects they describe.

## Query planning semantics

`repro.query.Query` executes through a small planner
(`repro.query.planner`) whenever the query carries an attribute index:
conditions are compiled once into closure predicates
(`repro.query.compile.compile_condition`, memoized on the immutable
condition instance), indexable conjuncts (`Eq`/`Exists`/`Contains` on
indexed paths) become inverted-index probes whose candidate sets are
intersected most-selective-first, the remaining *residual* condition
filters only the candidates, and `order_by` + `limit` push down to a
bounded heap selection. Queries without a usable probe fall back to a
compiled full scan; `Query.explain()` returns the `Plan` either way.

The index (`repro.store.AttrIndex`) posts each datum under every value
its indexed paths reach with **existential spread** — sets and
or-values fan out to their members — which is exactly the quantifier
`Condition` evaluation uses, so probes are exact, never approximate.
`Database(index_paths=...)` / `Database.create_index()` maintain the
postings incrementally through `insert`/`remove`/`update`/`merge_in`.
Planned execution is observationally identical to the definitional
scan: every run method accepts `naive=True` (the full-scan oracle), and
`tests/properties/test_planner_differential.py` plus the committed
`BENCH_query.json` benchmark assert planned == naive on every run.
"""


def first_sentence(doc: str | None) -> str:
    if not doc:
        return ""
    text = " ".join(doc.strip().split())
    for terminator in (". ", ".\n"):
        position = text.find(terminator)
        if position != -1:
            return text[:position + 1]
    return text if text.endswith(".") else text + "."


def describe(name: str, value: object) -> str:
    if inspect.isclass(value):
        return f"- **`{name}`** (class) — {first_sentence(value.__doc__)}"
    if inspect.isfunction(value):
        try:
            signature = str(inspect.signature(value))
        except (TypeError, ValueError):
            signature = "(...)"
        if len(signature) > 60:
            signature = "(...)"
        return (f"- **`{name}{signature}`** — "
                f"{first_sentence(value.__doc__)}")
    return f"- **`{name}`** — constant."


def main() -> int:
    sections = [HEADER]
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            exported = [name for name in vars(module)
                        if not name.startswith("_")]
        sections.append(f"\n## `{module_name}`\n")
        sections.append(first_sentence(module.__doc__) + "\n")
        for name in exported:
            value = getattr(module, name, None)
            if value is None and name != "BOTTOM":
                continue
            sections.append(describe(name, value))
        sections.append("")
    output = Path(__file__).resolve().parents[1] / "docs" / "API.md"
    text = "\n".join(sections) + "\n"
    output.write_text(text)
    print(f"wrote {output} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
